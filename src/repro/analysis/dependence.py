"""Memory dependences: the paper's DEPENDENCE and EXTENDED-DEPENDENCE rules.

Base rule (Section 4.1): ``X ->dep Y`` when X precedes Y in original program
order, X and Y may (or must) access the same location, and at least one is a
store.

EXTENDED-DEPENDENCE 1 (speculative load elimination): when a load Z is
eliminated by forwarding from an earlier access X, every *store* S strictly
between X and Z that may alias X gains ``S ->dep X`` — note the *backward*
direction relative to program order, which is what makes constraint-graph
cycles possible. (An aliasing store between the forwarding source and the
eliminated load makes the forwarded value stale; intervening loads cannot.
The paper's Figure 8/10 worked example — ``st [r1]`` must check the
forwarding source ``ld [r0+4]`` — fixes the rule's intent where the
source text is garbled.)

EXTENDED-DEPENDENCE 2 (speculative store elimination): when a store X is
eliminated because a later store Z overwrites it, every load Y strictly
between X and Z that may alias Z gains ``Z ->dep Y`` — again backward.

Extended dependences are recorded by the optimization passes that create
them (:mod:`repro.opt.load_elim`, :mod:`repro.opt.store_elim`) using the
helpers here.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.analysis.aliasinfo import AliasAnalysis, AliasClass
from repro.ir.instruction import Instruction


@dataclass(frozen=True)
class Dependence:
    """``src ->dep dst``: dst depends on src.

    For base dependences ``src`` precedes ``dst`` in program order. For
    extended dependences the direction can be backward; ``extended`` marks
    them. ``must`` records whether the underlying pair is a MUST alias
    (the scheduler never speculates on MUST pairs).
    """

    src: Instruction
    dst: Instruction
    extended: bool = False
    must: bool = False

    def __repr__(self) -> str:
        kind = "edep" if self.extended else "dep"
        return f"<{self.src!r} ->{kind} {self.dst!r}>"


def compute_dependences(block, analysis: AliasAnalysis) -> List[Dependence]:
    """All base memory dependences of ``block`` (original program order).

    Semantically this is the O(m²) scan over all (earlier, later) pairs with
    at least one store, keeping every pair the analysis cannot prove NO.
    The enumeration is bucketed instead of quadratic: pairs whose addresses
    resolve to *different* data regions, and resolved same-region pairs with
    disjoint byte intervals, are exactly the pairs
    :func:`repro.analysis.aliasinfo.classify_pair` rejects without looking
    at base registers — so they are skipped without being enumerated.
    Every surviving candidate still goes through ``analysis.classify`` and
    the result list is emitted in the original nested-loop (i, j) order,
    keeping the output byte-identical to the quadratic scan.
    """
    ops = block.memory_ops_in_program_order()
    if len(ops) < 2:
        return []

    # Per-region pools of *earlier* ops, split store-only / all so a later
    # load only ever pairs with earlier stores. Resolved pools are kept
    # sorted by interval start for windowed overlap lookup.
    res_all: Dict[str, List[Tuple[int, int, int]]] = {}  # (lo, hi, idx)
    res_store: Dict[str, List[Tuple[int, int, int]]] = {}
    res_max_size: Dict[str, int] = {}  # widest access seen per pool
    kreg_all: Dict[str, List[int]] = {}  # region known, offset unknown
    kreg_store: Dict[str, List[int]] = {}
    unk_all: List[int] = []  # region unknown: pairs with everything
    unk_store: List[int] = []
    every_all: List[int] = []
    every_store: List[int] = []

    candidates: List[Tuple[int, int]] = []
    for j, later in enumerate(ops):
        sym = analysis.address_of(later)
        lo, hi = sym.offset, None
        if lo is not None:
            hi = lo + sym.size - 1
        if j:
            if sym.region is None:
                # Unknown region: nothing is provably NO by region alone.
                pool = every_all if later.is_store else every_store
                candidates.extend((i, j) for i in pool)
            else:
                pool = unk_all if later.is_store else unk_store
                candidates.extend((i, j) for i in pool)
                kpool = (kreg_all if later.is_store else kreg_store).get(
                    sym.region
                )
                if kpool:
                    candidates.extend((i, j) for i in kpool)
                rpool = (res_all if later.is_store else res_store).get(
                    sym.region
                )
                if rpool:
                    if lo is None:
                        candidates.extend((entry[2], j) for entry in rpool)
                    else:
                        # Overlap window: entries starting at most one
                        # max-width access before our interval's end.
                        width = res_max_size.get(sym.region, 1)
                        start = bisect_left(rpool, (lo - width + 1, -1, -1))
                        for t in range(start, len(rpool)):
                            e_lo, e_hi, i = rpool[t]
                            if e_lo > hi:
                                break
                            if e_hi >= lo:
                                candidates.append((i, j))

        if sym.region is None:
            unk_all.append(j)
            if later.is_store:
                unk_store.append(j)
        elif lo is None:
            kreg_all.setdefault(sym.region, []).append(j)
            if later.is_store:
                kreg_store.setdefault(sym.region, []).append(j)
        else:
            entry = (lo, hi, j)
            insort(res_all.setdefault(sym.region, []), entry)
            if later.is_store:
                insort(res_store.setdefault(sym.region, []), entry)
            if sym.size > res_max_size.get(sym.region, 0):
                res_max_size[sym.region] = sym.size
        every_all.append(j)
        if later.is_store:
            every_store.append(j)

    candidates.sort()
    deps: List[Dependence] = []
    for i, j in candidates:
        earlier, later = ops[i], ops[j]
        klass = analysis.classify(earlier, later)
        if klass is AliasClass.NO:
            continue
        deps.append(
            Dependence(earlier, later, must=(klass is AliasClass.MUST))
        )
    return deps


def extended_deps_for_load_elimination(
    forward_src: Instruction,
    eliminated_load: Instruction,
    between: Iterable[Instruction],
    analysis: AliasAnalysis,
) -> List[Dependence]:
    """EXTENDED-DEPENDENCE 1 for one load elimination.

    ``between`` must be the memory operations strictly between
    ``forward_src`` (X) and ``eliminated_load`` (Z) in original program
    order. Returns ``S ->dep X`` for each store S that may alias X.
    """
    deps = []
    for s in between:
        if not s.is_store:
            continue
        if analysis.classify(s, forward_src) is AliasClass.NO:
            continue
        deps.append(Dependence(s, forward_src, extended=True))
    return deps


def extended_deps_for_store_elimination(
    overwriting_store: Instruction,
    eliminated_store: Instruction,
    between: Iterable[Instruction],
    analysis: AliasAnalysis,
) -> List[Dependence]:
    """EXTENDED-DEPENDENCE 2 for one store elimination.

    ``between`` must be the memory operations strictly between the
    eliminated store (X) and the overwriting store (Z) in original program
    order. Returns ``Z ->dep Y`` for each load Y that may alias Z. Stores in
    between get nothing — the paper notes their aliases cannot affect the
    elimination's correctness.
    """
    deps = []
    for y in between:
        if not y.is_load:
            continue
        if analysis.classify(overwriting_store, y) is AliasClass.NO:
            continue
        deps.append(Dependence(overwriting_store, y, extended=True))
    return deps


class DependenceSet:
    """Indexed collection of dependences for efficient scheduler queries."""

    def __init__(self, deps: Iterable[Dependence] = ()) -> None:
        self._deps: List[Dependence] = []
        self._by_src: Dict[int, List[Dependence]] = {}
        self._by_dst: Dict[int, List[Dependence]] = {}
        for dep in deps:
            self.add(dep)

    def add(self, dep: Dependence) -> None:
        self._deps.append(dep)
        self._by_src.setdefault(dep.src.uid, []).append(dep)
        self._by_dst.setdefault(dep.dst.uid, []).append(dep)

    def __len__(self) -> int:
        return len(self._deps)

    def __iter__(self):
        return iter(self._deps)

    def outgoing(self, inst: Instruction) -> List[Dependence]:
        """Dependences with ``inst`` as the source (X ->dep *)."""
        return list(self._by_src.get(inst.uid, ()))

    def incoming(self, inst: Instruction) -> List[Dependence]:
        """Dependences with ``inst`` as the destination (* ->dep inst)."""
        return list(self._by_dst.get(inst.uid, ()))

    def iter_incoming(self, inst: Instruction) -> Tuple[Dependence, ...]:
        """Like :meth:`incoming` without the defensive copy — for hot
        read-only consumers (the allocator visits every dependence of
        every scheduled op). Callers must not mutate the result."""
        return self._by_dst.get(inst.uid, ())  # type: ignore[return-value]

    def replace_instruction(self, old: Instruction, new: Instruction) -> None:
        """Rewrite all dependences touching ``old`` to touch ``new``.

        Used when the allocator splits an operation with an AMOV: unscheduled
        checkers of X must instead check the AMOV X' (paper Figure 13
        line 42 analogue at the dependence level).
        """
        rewritten: List[Dependence] = []
        for dep in self._deps:
            src = new if dep.src is old else dep.src
            dst = new if dep.dst is old else dep.dst
            rewritten.append(
                Dependence(src, dst, extended=dep.extended, must=dep.must)
            )
        self._deps = []
        self._by_src = {}
        self._by_dst = {}
        for dep in rewritten:
            self.add(dep)


def dependences_between(
    deps: Iterable[Dependence], a: Instruction, b: Instruction
) -> List[Dependence]:
    """All dependences connecting two specific instructions (either way)."""
    found = []
    for dep in deps:
        if (dep.src is a and dep.dst is b) or (dep.src is b and dep.dst is a):
            found.append(dep)
    return found
