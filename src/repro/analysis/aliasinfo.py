"""Static and speculative alias classification.

A dynamic optimizer has no source-level type or array information, so its
alias analysis is deliberately simple (paper Section 1). We implement the
two techniques such systems actually use:

1. **Base+displacement disambiguation**: two accesses through the *same*
   base register (with no intervening redefinition of that register) are
   MUST aliases when their ``[disp, disp+size)`` ranges coincide exactly,
   NO aliases when the ranges are disjoint, and MAY aliases otherwise.
2. **Symbolic region tracking**: a forward pass over the superblock tracks,
   per register, whether it holds ``region_base + known_offset`` for one of
   the guest program's data regions (seeded by ``MOVI`` of region addresses
   and updated through ``ADD/SUB`` with immediates and ``MOV``). Accesses
   resolved to *different* regions are NO aliases; same region with known
   offsets resolves exactly.

Anything the analysis cannot prove is MAY — exactly the pairs the optimizer
speculates on and the alias hardware guards.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from repro.ir.instruction import Instruction, Opcode


class AliasClass(enum.Enum):
    """Result of a pairwise alias query."""

    NO = "no"
    MAY = "may"
    MUST = "must"


@dataclass(frozen=True)
class SymbolicAddress:
    """What the analysis knows about one access's address.

    ``region`` is the guest data-region name (``None`` = unknown region);
    ``offset`` is the byte offset of the access within that region
    (``None`` = unknown). ``base`` / ``disp`` echo the register-level view
    used for same-base disambiguation; ``base_version`` distinguishes
    redefinitions of the base register inside the block.
    """

    region: Optional[str]
    offset: Optional[int]
    base: int
    disp: int
    size: int
    base_version: int

    @property
    def resolved(self) -> bool:
        return self.region is not None and self.offset is not None


def classify_pair(a: SymbolicAddress, b: SymbolicAddress) -> AliasClass:
    """Classify two accesses per the rules in the module docstring."""
    # Fully resolved: exact interval reasoning.
    if a.resolved and b.resolved:
        if a.region != b.region:
            return AliasClass.NO
        a_lo, a_hi = a.offset, a.offset + a.size - 1
        b_lo, b_hi = b.offset, b.offset + b.size - 1
        if a_hi < b_lo or b_hi < a_lo:
            return AliasClass.NO
        if a_lo == b_lo and a.size == b.size:
            return AliasClass.MUST
        return AliasClass.MAY
    # Distinct known regions never alias even if offsets are unknown.
    if a.region is not None and b.region is not None and a.region != b.region:
        return AliasClass.NO
    # Same base register, same version: pure displacement reasoning.
    if a.base == b.base and a.base_version == b.base_version:
        a_lo, a_hi = a.disp, a.disp + a.size - 1
        b_lo, b_hi = b.disp, b.disp + b.size - 1
        if a_hi < b_lo or b_hi < a_lo:
            return AliasClass.NO
        if a_lo == b_lo and a.size == b.size:
            return AliasClass.MUST
        return AliasClass.MAY
    return AliasClass.MAY


class AliasAnalysis:
    """Per-superblock alias facts for every memory operation.

    Parameters
    ----------
    block:
        The superblock in *original program order*.
    region_map:
        Guest data layout: ``{region_name: (start_address, size)}``. Used to
        resolve ``MOVI`` immediates to region bases.
    alias_hints:
        Optional profile hints: ``{(mem_index_a, mem_index_b): rate}`` with
        the observed runtime alias rate of a MAY pair. The speculative
        optimizer refuses to speculate on pairs whose rate exceeds its
        threshold (re-optimization would otherwise thrash).
    """

    def __init__(
        self,
        block,
        region_map: Optional[Mapping[str, Tuple[int, int]]] = None,
        alias_hints: Optional[Mapping[Tuple[int, int], float]] = None,
        initial_regions: Optional[Mapping[int, str]] = None,
        no_speculate: Optional[set] = None,
    ) -> None:
        """``initial_regions`` maps registers live at region entry to the
        data region they point into (the dynamic optimizer learns this from
        runtime register values at translation time). ``no_speculate`` is a
        set of mem_indexes the runtime has banned from speculation after
        repeated alias faults."""
        self._region_map = dict(region_map or {})
        self._alias_hints = dict(alias_hints or {})
        self._initial_regions = dict(initial_regions or {})
        self._no_speculate = set(no_speculate or ())
        self._addresses: Dict[int, SymbolicAddress] = {}
        self._classify_cache: Dict[Tuple[int, int], AliasClass] = {}
        self._run(block)

    # ------------------------------------------------------------------
    # Forward symbolic pass
    # ------------------------------------------------------------------
    def _run(self, block) -> None:
        # Register state: reg -> (region, offset) with offset possibly
        # None (region known, position within it unknown), or None for a
        # fully unknown register.
        state: Dict[int, Optional[Tuple[str, Optional[int]]]] = {
            reg: (region, None)
            for reg, region in self._initial_regions.items()
        }
        versions: Dict[int, int] = {}

        def bump(reg: int) -> None:
            versions[reg] = versions.get(reg, 0) + 1

        def resolve_immediate(value: int) -> Optional[Tuple[str, int]]:
            for name, (start, size) in self._region_map.items():
                if start <= value < start + size:
                    return (name, value - start)
            return None

        for inst in block:
            if inst.is_mem:
                pointer = state.get(inst.base)
                if pointer is not None:
                    region, reg_offset = pointer
                    sym = SymbolicAddress(
                        region=region,
                        offset=(
                            reg_offset + inst.disp
                            if reg_offset is not None
                            else None
                        ),
                        base=inst.base,
                        disp=inst.disp,
                        size=inst.size,
                        base_version=versions.get(inst.base, 0),
                    )
                else:
                    sym = SymbolicAddress(
                        region=None,
                        offset=None,
                        base=inst.base,
                        disp=inst.disp,
                        size=inst.size,
                        base_version=versions.get(inst.base, 0),
                    )
                self._addresses[inst.uid] = sym

            # Transfer function for register state.
            if inst.opcode is Opcode.MOVI and inst.dest is not None:
                state[inst.dest] = resolve_immediate(inst.imm or 0)
                bump(inst.dest)
            elif inst.opcode is Opcode.MOV and inst.dest is not None:
                state[inst.dest] = state.get(inst.srcs[0])
                bump(inst.dest)
            elif (
                inst.opcode in (Opcode.ADD, Opcode.SUB)
                and inst.dest is not None
                and inst.imm is not None
                and len(inst.srcs) == 1
            ):
                src_val = state.get(inst.srcs[0])
                if src_val is not None:
                    region, offset = src_val
                    delta = inst.imm if inst.opcode is Opcode.ADD else -inst.imm
                    new_offset = offset + delta if offset is not None else None
                    state[inst.dest] = (region, new_offset)
                else:
                    state[inst.dest] = None
                bump(inst.dest)
            elif inst.dest is not None:
                state[inst.dest] = None
                bump(inst.dest)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def address_of(self, inst: Instruction) -> SymbolicAddress:
        try:
            return self._addresses[inst.uid]
        except KeyError:
            raise KeyError(f"{inst!r} is not a memory operation of this block")

    def classify(self, a: Instruction, b: Instruction) -> AliasClass:
        """Alias class of two memory operations of the analyzed block."""
        key = (min(a.uid, b.uid), max(a.uid, b.uid))
        cached = self._classify_cache.get(key)
        if cached is None:
            cached = classify_pair(self.address_of(a), self.address_of(b))
            self._classify_cache[key] = cached
        return cached

    def speculation_banned(self, inst: Instruction) -> bool:
        """Has the runtime banned this operation from speculation?"""
        return inst.mem_index is not None and inst.mem_index in self._no_speculate

    def alias_rate(self, a: Instruction, b: Instruction) -> float:
        """Profiled runtime alias rate of a MAY pair (0.0 when unprofiled)."""
        if a.mem_index is None or b.mem_index is None:
            return 0.0
        lo = min(a.mem_index, b.mem_index)
        hi = max(a.mem_index, b.mem_index)
        return self._alias_hints.get((lo, hi), 0.0)

    def must_alias_pairs(self, block) -> List[Tuple[Instruction, Instruction]]:
        """All (earlier, later) MUST-alias pairs in program order —
        the candidate set for speculative load/store elimination."""
        ops = block.memory_ops_in_program_order()
        pairs = []
        for i, earlier in enumerate(ops):
            for later in ops[i + 1 :]:
                if self.classify(earlier, later) is AliasClass.MUST:
                    pairs.append((earlier, later))
        return pairs
