"""Plain order-based allocation — Section 2.4's baseline, runnable.

The order-based hardware *without* SMARQ's management: every memory
operation gets an alias register in original program order, sets it, and
checks all later-ordered live registers (no P/C selectivity, no
rotation). The paper argues three weaknesses, and this executable version
exhibits all of them:

1. **register waste** — the working set is the full memory-op count, so
   a region with more memory operations than physical registers cannot
   speculate at all (the allocator refuses speculation for the whole
   region, degrading it to a conservative schedule);
2. **wasted checks** — every operation compares against every live later
   register, not just the constrained ones (energy, Section 2.4);
3. **no eliminations** — program-order allocation cannot express the
   checks speculative load/store elimination requires, so the scheme is
   used with eliminations disabled.

Correct for pure reordering by the paper's Section 5.2 argument: all
constraints follow program order, so the program-order assignment
satisfies every check-constraint and can produce no false positive.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.analysis.dependence import DependenceSet
from repro.ir.instruction import Instruction
from repro.sched.list_scheduler import AllocatorHook
from repro.sched.machine import MachineModel
from repro.smarq.allocator import AllocationStats


class PlainOrderAllocator(AllocatorHook):
    """One register per memory op, in program order, set+check on all."""

    def __init__(
        self,
        machine: MachineModel,
        dependences: DependenceSet,
        program_order: List[Instruction],
    ) -> None:
        self.machine = machine
        self.deps = dependences
        self.stats = AllocationStats()
        mem_ops = [inst for inst in program_order if inst.is_mem]
        self.stats.memory_ops = len(mem_ops)
        #: speculation is only possible when every memory op fits
        self.fits = len(mem_ops) <= machine.alias_registers
        if self.fits:
            for op in mem_ops:
                # every op both protects and checks, at its program index
                op.p_bit = True
                op.c_bit = True
                op.ar_offset = op.mem_index
                op.ar_order = op.mem_index
            self.stats.p_bit_ops = len(mem_ops)
            self.stats.c_bit_ops = len(mem_ops)
            self.stats.registers_allocated = len(mem_ops)
            self.stats.working_set = len(mem_ops)

    def speculation_allowed(self, inst: Instruction) -> bool:
        if not self.fits:
            self.stats.speculation_throttled += 1
            return False
        return True

    def on_scheduled(
        self, inst: Instruction, cycle: int
    ) -> Tuple[List[Instruction], List[Instruction]]:
        return ([], [])

    def on_finish(self, linear: List[Instruction]) -> None:
        if not self.fits:
            # conservative schedule: annotations must not reach hardware
            for inst in linear:
                if inst.is_mem:
                    inst.p_bit = inst.c_bit = False
                    inst.ar_offset = inst.ar_order = None
            self.stats.p_bit_ops = 0
            self.stats.c_bit_ops = 0
            self.stats.registers_allocated = 0
            self.stats.working_set = 0
