"""Program-order baseline allocations (Figure 17's first two bars).

The straightforward order-based allocation gives each memory operation an
alias register in original program order. It supports plain speculative
reordering (all aliases between reordered operations are detected, no false
positives — Section 5.2 explains why the constraint graph is acyclic in
that case) but is wasteful, and cannot express the constraints from
speculative load/store elimination at all.

Two variants, matching the two baseline bars in Figure 17:

* :func:`program_order_all_allocation` — one register per memory operation;
* :func:`program_order_pbit_allocation` — one register per memory operation
  that actually sets a register (has a P bit under the given constraints).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.analysis.constraints import ConstraintSet
from repro.ir.instruction import Instruction


@dataclass
class ProgramOrderAllocation:
    order: Dict[int, int]
    registers_used: int
    #: one register per op, never rotated: the working set is all of them
    working_set: int


def program_order_all_allocation(
    block_program_order: Sequence[Instruction],
) -> ProgramOrderAllocation:
    """Allocate one register per memory operation in program order."""
    order: Dict[int, int] = {}
    next_order = 0
    for inst in block_program_order:
        if inst.is_mem:
            order[inst.uid] = next_order
            next_order += 1
    return ProgramOrderAllocation(
        order=order, registers_used=next_order, working_set=next_order
    )


def program_order_pbit_allocation(
    block_program_order: Sequence[Instruction],
    constraints: ConstraintSet,
) -> ProgramOrderAllocation:
    """Allocate registers in program order, but only to P-bit operations."""
    p_ops = {c.target.uid for c in constraints.checks}
    order: Dict[int, int] = {}
    next_order = 0
    for inst in block_program_order:
        if inst.is_mem and inst.uid in p_ops:
            order[inst.uid] = next_order
            next_order += 1
    return ProgramOrderAllocation(
        order=order, registers_used=next_order, working_set=next_order
    )
