"""FAST ALGORITHM + MAX-BASE rotation on a fixed schedule (Section 5.1).

This is the standalone (non-scheduler-integrated) allocation path. It is
used when the schedule is already decided — in tests reproducing the
paper's worked examples, and in the working-set experiments where only the
allocation (not the timing) matters.

Given the scheduled order of a superblock and an *acyclic* constraint
graph, the algorithm:

1. traverses memory operations in a topological order of the constraint
   graph, assigning ``order(X) = next_order`` (incrementing for P-bit
   operations, sharing for C-only ones);
2. computes each operation's maximal BASE per the MAX-BASE formula —
   ``base(X) = min{ order(Y) : Y executes at or after X }`` — so offsets
   are minimal;
3. emits ``ROTATE`` pseudo-instructions between consecutive scheduled
   operations whose bases differ, and rewrites each ``ar_offset`` as
   ``order - base``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.analysis.constraints import ConstraintGraph, ConstraintSet
from repro.ir.instruction import Instruction, rotate


@dataclass
class FastAllocation:
    """Result of the standalone fast allocation."""

    #: uid -> absolute register order
    order: Dict[int, int]
    #: uid -> BASE value at that operation's execution
    base: Dict[int, int]
    #: uid -> offset (order - base); also written into ``inst.ar_offset``
    offset: Dict[int, int]
    #: linear instruction list with ROTATE pseudo-ops spliced in
    linear: List[Instruction]
    #: total registers allocated (next_order at completion)
    registers_used: int
    #: maximum offset + 1 == minimum HW registers needed (Section 3.2)
    working_set: int


def fast_allocate(
    scheduled: Sequence[Instruction],
    constraints: ConstraintSet,
    insert_rotations: bool = True,
) -> FastAllocation:
    """Run FAST ALGORITHM + MAX-BASE over an already-scheduled block.

    ``scheduled`` is the full scheduled instruction sequence (memory and
    non-memory). Raises :class:`ConstraintCycleError` (from the topological
    sort) if the constraint graph has a cycle — cycles require the
    integrated allocator's AMOV machinery.
    """
    graph = ConstraintGraph.from_constraints(constraints)

    # Mark P/C bits from the constraints.
    p_ops = {c.target.uid for c in constraints.checks}
    c_ops = {c.checker.uid for c in constraints.checks}
    for inst in scheduled:
        if inst.is_mem:
            inst.p_bit = inst.uid in p_ops
            inst.c_bit = inst.uid in c_ops

    participants = [
        inst for inst in scheduled if inst.is_mem and (inst.p_bit or inst.c_bit)
    ]
    for inst in participants:
        graph.add_node(inst)

    # Step 1: orders by topological traversal.
    order: Dict[int, int] = {}
    next_order = 0
    for inst in graph.topological_order():
        order[inst.uid] = next_order
        if inst.p_bit:
            next_order += 1
    registers_used = next_order

    # Step 2: MAX-BASE. base(X) = min order over X and everything at or
    # after X in the schedule (non-participants are transparent).
    base: Dict[int, int] = {}
    running_min = registers_used  # orders are < registers_used... see below
    # C-only tail operations can share order == next_order at their
    # allocation, which may equal registers_used; account for that.
    if order:
        running_min = max(order.values()) + 1
    for inst in reversed(list(scheduled)):
        if inst.uid in order:
            running_min = min(running_min, order[inst.uid])
            base[inst.uid] = running_min

    # Step 3: offsets and rotation insertion.
    offset: Dict[int, int] = {}
    linear: List[Instruction] = []
    current_base = 0
    working_set = 0
    for inst in scheduled:
        if inst.uid in order:
            if insert_rotations and base[inst.uid] > current_base:
                linear.append(rotate(base[inst.uid] - current_base))
                current_base = base[inst.uid]
            off = order[inst.uid] - current_base
            offset[inst.uid] = off
            inst.ar_offset = off
            inst.ar_order = order[inst.uid]
            working_set = max(working_set, off + 1)
        linear.append(inst)
    if not insert_rotations:
        # Offsets equal absolute orders; working set is the order span.
        working_set = max((o + 1 for o in order.values()), default=0)
        for inst in scheduled:
            if inst.uid in order:
                offset[inst.uid] = order[inst.uid]
                inst.ar_offset = order[inst.uid]

    return FastAllocation(
        order=order,
        base=base,
        offset=offset,
        linear=linear,
        registers_used=registers_used,
        working_set=working_set,
    )
