"""SMARQ — software management of the order-based alias register queue.

The paper's primary contribution, in four pieces:

* :mod:`repro.smarq.fast_alloc` — the FAST ALGORITHM (Section 5.1): given a
  fixed schedule and an acyclic constraint graph, allocate alias register
  *orders* by topological traversal, then maximize each operation's BASE
  (MAX-BASE) and insert ``ROTATE`` instructions, minimizing offsets.
* :mod:`repro.smarq.program_order` — the straightforward baseline that
  allocates one register per memory operation in original program order
  (the working-set strawman of Figure 17).
* :mod:`repro.smarq.allocator` — the full integrated algorithm of paper
  Figure 13: constraints built incrementally during list scheduling,
  ready/delay queues, incremental cycle detection, AMOV cycle breaking,
  rotation insertion, and overflow-driven speculation throttling.
* :mod:`repro.smarq.validator` — replays allocations against the hardware
  queue model and proves that every check-constraint is detected and no
  anti-constraint can fire (no false positives).
"""

from repro.smarq.fast_alloc import FastAllocation, fast_allocate
from repro.smarq.program_order import (
    program_order_all_allocation,
    program_order_pbit_allocation,
)
from repro.smarq.allocator import AllocationStats, SmarqAllocator
from repro.smarq.bitmask_alloc import BitmaskAllocator
from repro.smarq.plain_order_alloc import PlainOrderAllocator
from repro.smarq.validator import (
    ValidationError,
    count_anti_violations,
    semantic_pairs_from_allocator,
    validate_allocation,
)

__all__ = [
    "AllocationStats",
    "BitmaskAllocator",
    "FastAllocation",
    "PlainOrderAllocator",
    "SmarqAllocator",
    "ValidationError",
    "count_anti_violations",
    "fast_allocate",
    "program_order_all_allocation",
    "program_order_pbit_allocation",
    "semantic_pairs_from_allocator",
    "validate_allocation",
]
