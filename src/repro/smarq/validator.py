"""Allocation validator.

Replays an allocated, scheduled superblock against the
:class:`~repro.hw.queue_model.AliasRegisterQueue` hardware model with
*synthetic addresses*, proving the two properties the paper requires of a
correct allocation:

1. **Completeness** — for every check-constraint ``X ->check Y``, if X and Y
   touch overlapping memory at runtime, the hardware raises an alias
   exception. Verified by giving every memory operation a disjoint address
   except the (X, Y) pair, which is made to collide, then replaying.
2. **No false positives** — for every anti-constraint ``X ->anti Y``, a
   runtime overlap between X and Y alone must NOT raise. Same replay with
   the collision on (X, Y).

Plus a sanity property: with all-disjoint addresses no replay raises, and
no referenced offset reaches the physical register count.

AMOV-rewired constraints are validated *semantically*: a constraint
``Z ->check X'`` (X' the AMOV that relocated S's range) is exercised by
colliding Z with S — the relocation is an implementation detail the replay
must see through.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.hw.exceptions import AliasException
from repro.hw.queue_model import AliasRegisterQueue
from repro.hw.ranges import AccessRange
from repro.ir.instruction import Instruction, Opcode


class ValidationError(AssertionError):
    """The allocation violates a required detection property."""


def replay_stream(
    linear: Sequence[Instruction],
    addresses: Dict[int, int],
    num_registers: int,
    queue_factory=AliasRegisterQueue,
) -> Optional[AliasException]:
    """Execute the annotated stream against a queue model.

    ``addresses`` maps instruction uid -> start address. Returns the first
    alias exception, or None. AMOVs and rotations are honoured; ops without
    P/C bits do not touch the queue.

    ``queue_factory`` lets callers replay against an alternative hardware
    implementation with the same scalar API — the differential fuzzer uses
    this both to drive its brute-force reference queue and to inject
    deliberately broken mutants when testing the oracle itself. Only the
    ``*_range`` scalar entry points, ``rotate`` and ``amov`` are required.
    """
    queue = queue_factory(num_registers)
    for inst in linear:
        if inst.opcode is Opcode.ROTATE:
            queue.rotate(inst.rotate_by)
            continue
        if inst.opcode is Opcode.AMOV:
            queue.amov(inst.amov_src, inst.amov_dst)
            continue
        if not inst.is_mem or not (inst.p_bit or inst.c_bit):
            continue
        if inst.ar_offset is None:
            raise ValidationError(f"{inst!r} has P/C bits but no offset")
        start = addresses[inst.uid]
        try:
            if inst.p_bit and inst.c_bit:
                queue.check_then_set_range(
                    inst.ar_offset, start, inst.size, inst.is_load,
                    inst.mem_index,
                )
            elif inst.p_bit:
                queue.set_range(
                    inst.ar_offset, start, inst.size, inst.is_load,
                    inst.mem_index,
                )
            else:
                queue.check_range(
                    inst.ar_offset, start, inst.size, inst.is_load,
                    inst.mem_index,
                )
        except AliasException as exc:
            return exc
    return None


#: Backward-compatible internal alias (historical name).
_replay = replay_stream


def _disjoint_addresses(
    linear: Sequence[Instruction], stride: int = 0x100
) -> Dict[int, int]:
    addresses: Dict[int, int] = {}
    next_addr = 0x10000
    for inst in linear:
        if inst.is_mem:
            addresses[inst.uid] = next_addr
            next_addr += stride
    return addresses


def validate_allocation(
    linear: Sequence[Instruction],
    check_pairs: Iterable[Tuple[Instruction, Instruction]],
    anti_pairs: Iterable[Tuple[Instruction, Instruction]],
    num_registers: int,
    queue_factory=AliasRegisterQueue,
    probe_boundaries: bool = False,
    certified_pairs: Iterable[Tuple[Instruction, Instruction]] = (),
) -> None:
    """Raise :class:`ValidationError` on any violated property.

    ``check_pairs`` are semantic (checker, target) instruction pairs;
    ``anti_pairs`` are semantic (protected, checker) pairs. Both use the
    *original* memory operations (AMOV relocation already resolved by the
    caller; see :func:`semantic_pairs_from_allocator`).

    ``certified_pairs`` are (earlier, later) memory-op pairs the static
    certifier dropped from the constraint set
    (:mod:`repro.analysis.certify`): no check constraint may connect the
    pair in either direction — the whole point of certification is that
    no runtime check guards it, so a surviving constraint marks one the
    pipeline failed to drop (or an allocator that re-derived it). When
    neither op checks *anything*, the pair is additionally collided and
    replayed, which must not raise. (When one of them legitimately
    checks a third op, the collision probe is skipped: an ordered-queue
    check scans a window of entries that can include the certified
    partner, so the probe would report that real check, not a leaked
    constraint.)

    With ``probe_boundaries`` the exact-collision replays are augmented
    with range-boundary probes per check pair: the checker overlapping
    the target's *last byte only* must still be detected, and the checker
    starting *exactly one past* the target's range (adjacent, open upper
    bound) must not be. Exact collisions certify the allocation; the
    boundary probes additionally pin the hardware's overlap predicate,
    which is what lets the fuzzer detect an off-by-one planted in
    ``queue_factory``.
    """
    base = _disjoint_addresses(linear)
    stride = 0x100
    check_pairs = list(check_pairs)

    clean = replay_stream(linear, base, num_registers, queue_factory)
    if clean is not None:
        raise ValidationError(
            f"replay with disjoint addresses raised {clean} — allocation "
            f"performs a self-colliding or stale check"
        )

    position = {inst.uid: i for i, inst in enumerate(linear)}

    for checker, target in check_pairs:
        if position[checker.uid] < position[target.uid]:
            raise ValidationError(
                f"check-constraint {checker!r} ->check {target!r}: checker "
                f"scheduled before target — the hardware rule cannot fire"
            )
        probes = [(0, True, "exact collision")]
        if probe_boundaries and checker.size + target.size < stride // 2:
            probes.append(
                (target.size - 1, True, "last-byte overlap")
            )
            probes.append(
                (target.size, False, "exactly-adjacent ranges")
            )
        for delta, must_raise, label in probes:
            addresses = dict(base)
            addresses[checker.uid] = addresses[target.uid] + delta
            exc = replay_stream(linear, addresses, num_registers, queue_factory)
            if must_raise and exc is None:
                raise ValidationError(
                    f"MISSED DETECTION ({label}): colliding {checker!r} "
                    f"with {target!r} raised no alias exception"
                )
            if not must_raise and exc is not None:
                raise ValidationError(
                    f"FALSE POSITIVE ({label}): {checker!r} adjacent to "
                    f"{target!r} raised {exc}"
                )

    for protected, checker in anti_pairs:
        addresses = dict(base)
        addresses[checker.uid] = addresses[protected.uid]
        exc = replay_stream(linear, addresses, num_registers, queue_factory)
        if exc is not None:
            raise ValidationError(
                f"FALSE POSITIVE: colliding {protected!r} with {checker!r} "
                f"(anti-constrained) raised {exc}"
            )

    check_uid_pairs = {(c.uid, t.uid) for c, t in check_pairs}
    checker_uids = {c.uid for c, _t in check_pairs}
    for earlier, later in certified_pairs:
        if (
            (earlier.uid, later.uid) in check_uid_pairs
            or (later.uid, earlier.uid) in check_uid_pairs
        ):
            raise ValidationError(
                f"CERTIFIED PAIR STILL CHECKED: a check constraint "
                f"connects {earlier!r} and {later!r} (statically "
                f"certified disjoint)"
            )
        if earlier.uid not in base or later.uid not in base:
            continue  # op eliminated before scheduling; nothing to probe
        if earlier.uid in checker_uids or later.uid in checker_uids:
            continue  # window checks for third ops would fire legitimately
        addresses = dict(base)
        addresses[later.uid] = addresses[earlier.uid]
        exc = replay_stream(linear, addresses, num_registers, queue_factory)
        if exc is not None:
            raise ValidationError(
                f"CERTIFIED PAIR STILL CHECKED: colliding {earlier!r} with "
                f"{later!r} (statically certified disjoint) raised {exc}"
            )


def count_anti_violations(
    linear: Sequence[Instruction],
    anti_pairs: Iterable[Tuple[Instruction, Instruction]],
    num_registers: int,
) -> int:
    """How many anti pairs would falsely fire at runtime (ablation metric).

    Each (protected, checker) pair is collided in isolation; a raised
    exception counts as one false-positive hazard.
    """
    base = _disjoint_addresses(linear)
    violations = 0
    for protected, checker in anti_pairs:
        addresses = dict(base)
        addresses[checker.uid] = addresses[protected.uid]
        if _replay(linear, addresses, num_registers) is not None:
            violations += 1
    return violations


def semantic_pairs_from_allocator(
    allocator,
) -> Tuple[List[Tuple[Instruction, Instruction]], List[Tuple[Instruction, Instruction]]]:
    """Extract semantic (checker, target) / (protected, checker) pairs.

    Resolves AMOV indirection: a recorded pair ``(Z, X')`` where X' is an
    AMOV becomes ``(Z, S)`` with S the instruction whose range the AMOV
    moved. Anti edges sourced at an AMOV similarly map back to S.
    """
    moved_source = {
        amov_inst.uid: source for amov_inst, source in allocator._amov_fixups
    }
    inst_of = allocator._inst

    checks: List[Tuple[Instruction, Instruction]] = []
    for checker_uid, target_uid in allocator._check_pairs:
        checker = inst_of[checker_uid]
        target = inst_of[target_uid]
        if target.opcode is Opcode.AMOV:
            target = moved_source[target.uid]
        checks.append((checker, target))

    antis: List[Tuple[Instruction, Instruction]] = []
    # Anti constraints are the strict edges; the allocator folds them into
    # the same adjacency, so recover them from stats by construction: we
    # track them explicitly on the torder edges via recorded pairs.
    for protected_uid, checker_uid in getattr(allocator, "_anti_pairs", ()):
        protected = inst_of[protected_uid]
        checker = inst_of[checker_uid]
        if protected.opcode is Opcode.AMOV:
            protected = moved_source[protected.uid]
        antis.append((protected, checker))
    return checks, antis
