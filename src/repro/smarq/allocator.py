"""The integrated SMARQ allocator (paper Figure 13).

The allocator plugs into :class:`repro.sched.list_scheduler.ListScheduler`
as its :class:`AllocatorHook` and performs alias register allocation *during*
scheduling, in a single pass:

* When the scheduler places a memory operation ``Y``, every memory
  dependence ``S ->dep Y`` is examined (line 8 of Figure 13):

  - ``S`` **not yet scheduled** — the pair is being reordered (or ``S`` is
    the mandatory checker from an extended dependence). Set ``C(S)`` and
    ``P(Y)``, add the check-constraint ``S ->check Y``, and lower ``T(S)``
    to maintain the partial-order invariance (lines 9-12).
  - ``S`` **already scheduled** and still unallocated — add the
    anti-constraint ``S ->anti Y`` when ``P(S)``, ``C(Y)``, and no
    ``Y ->check S`` exists (lines 13-15). If this would close a cycle, an
    ``AMOV`` is inserted just before ``Y`` to relocate ``S``'s access range
    (lines 33-54): unscheduled checkers of ``S`` are rewired to the AMOV.

* Allocation itself is deferred through a ready queue: an operation's
  register *order* is assigned only once every operation that must
  receive an earlier-or-equal order (its constraint-graph predecessors)
  has been allocated (lines 56-75; operations with unallocated
  predecessors simply wait as pending until the allocation that releases
  their last constraint edge pushes them onto the queue). Because of the deferral,
  a register's order is assigned exactly when its last user is scheduled —
  so immediately afterwards the queue BASE can rotate past it, which is
  what keeps the working set small (Figure 17).

* Overflow prevention (lines 21-31): before permitting new speculation the
  allocator bounds the worst-case future offset; if it would reach the
  physical register count the scheduler is switched to non-speculation
  mode until enough registers drain.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from heapq import heappop, heappush
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.cycles import IncrementalOrder, OrderCycleError
from repro.analysis.dependence import Dependence, DependenceSet
from repro.hw.exceptions import AliasRegisterOverflow
from repro.ir.instruction import Instruction, amov, rotate
from repro.sched.list_scheduler import AllocatorHook
from repro.sched.machine import MachineModel


@dataclass
class AllocationStats:
    """Per-superblock allocation statistics (Figures 17 and 19)."""

    memory_ops: int = 0
    p_bit_ops: int = 0
    c_bit_ops: int = 0
    check_constraints: int = 0
    anti_constraints: int = 0
    amovs_inserted: int = 0
    amovs_cleanup_only: int = 0
    rotations_inserted: int = 0
    registers_allocated: int = 0
    #: max offset + 1 over all operations == minimum HW registers needed
    working_set: int = 0
    speculation_throttled: int = 0
    overflow_aborts: int = 0


class SmarqAllocator(AllocatorHook):
    """Scheduler hook performing integrated alias register allocation."""

    def __init__(
        self,
        machine: MachineModel,
        dependences: DependenceSet,
        program_order: List[Instruction],
        overflow_margin: int = 2,
        enable_anti: bool = True,
        enable_amov: bool = True,
        enable_throttle: bool = True,
    ) -> None:
        """The ``enable_*`` switches exist for the ablation studies in
        ``benchmarks/``: disabling anti-constraints admits false-positive
        checks; disabling AMOV drops cycle-closing anti-constraints instead
        of relocating the range; disabling throttling lets allocation run
        into hard overflow on small register files."""
        self.machine = machine
        self.deps = dependences
        self.stats = AllocationStats()
        self._overflow_margin = overflow_margin
        self.enable_anti = enable_anti
        self.enable_amov = enable_amov
        self.enable_throttle = enable_throttle

        self._torder = IncrementalOrder()
        self._torder.register_program_order(program_order)
        self.stats.memory_ops = sum(1 for i in program_order if i.is_mem)

        # Constraint adjacency for allocation ordering: edge u -> v means
        # order(u) <= order(v), so u must be allocated before v.
        self._out: Dict[int, Set[int]] = {}
        self._in: Dict[int, Set[int]] = {}
        self._inst: Dict[int, Instruction] = {i.uid: i for i in program_order}
        #: (checker_uid, target_uid) pairs — for the "no Y ->check X" test
        self._check_pairs: Set[Tuple[int, int]] = set()
        #: (protected_uid, checker_uid) anti-constraint pairs
        self._anti_pairs: Set[Tuple[int, int]] = set()
        #: target_uid -> unscheduled checker instructions (AMOV rewiring)
        self._checkers_of: Dict[int, List[Instruction]] = {}

        self._scheduled: Set[int] = set()
        self._allocated: Set[int] = set()
        self._next_order = 0
        self._base: Dict[int, int] = {}
        self._order: Dict[int, int] = {}
        self._ready: deque = deque()
        self._pending: Set[int] = set()  # scheduled, awaiting allocation
        # Maintained aggregates so the scheduler's per-candidate
        # speculation_allowed query is O(log n) instead of rescanning
        # every pending operation and every dependence:
        #: lazy-deletion min-heap of (base, uid) over pending operations
        self._base_heap: List[Tuple[int, int]] = []
        #: pending operations carrying a P bit (P bits are stable once an
        #: operation is enqueued — see _enqueue_for_allocation)
        self._pending_p = 0
        #: not-yet-scheduled endpoints of extended dependences (their
        #: checks are mandatory future register pressure)
        self._ext_unsched: Set[int] = {
            end.uid
            for dep in dependences
            if dep.extended
            for end in (dep.src, dep.dst)
        }
        #: AMOV fixups: (amov_inst, moved_source_inst)
        self._amov_fixups: List[Tuple[Instruction, Instruction]] = []
        self._linear: Optional[List[Instruction]] = None

    # ------------------------------------------------------------------
    # Public results
    # ------------------------------------------------------------------
    @property
    def next_order(self) -> int:
        return self._next_order

    def order_of(self, inst: Instruction) -> Optional[int]:
        return self._order.get(inst.uid)

    def base_of(self, inst: Instruction) -> Optional[int]:
        return self._base.get(inst.uid)

    # ------------------------------------------------------------------
    # AllocatorHook: speculation throttling (Figure 13 lines 21-31)
    # ------------------------------------------------------------------
    def speculation_allowed(self, inst: Instruction) -> bool:
        if not self.enable_throttle:
            return True
        # min base over pending ops, via the lazy-deletion heap (entries
        # whose op got allocated are discarded on sight).
        heap = self._base_heap
        while heap and heap[0][1] not in self._pending:
            heappop(heap)
        min_base = self._next_order
        if heap and heap[0][0] < min_base:
            min_base = heap[0][0]
        # Future mandatory register pressure: extended dependences force
        # checks even without reordering; their unscheduled endpoints are
        # maintained incrementally in on_scheduled.
        max_order = (
            self._next_order + self._pending_p + len(self._ext_unsched) + 1
        )  # +1 for inst
        max_offset = max_order - min_base
        if max_offset + self._overflow_margin >= self.machine.alias_registers:
            self.stats.speculation_throttled += 1
            return False
        return True

    # ------------------------------------------------------------------
    # AllocatorHook: constraint building + allocation per scheduled op
    # ------------------------------------------------------------------
    def on_scheduled(
        self, inst: Instruction, cycle: int
    ) -> Tuple[List[Instruction], List[Instruction]]:
        self._scheduled.add(inst.uid)
        self._ext_unsched.discard(inst.uid)
        if not inst.is_mem:
            return ([], [])
        before: List[Instruction] = []

        for dep in self.deps.iter_incoming(inst):  # S ->dep Y, Y == inst
            s = dep.src
            if s.uid not in self._scheduled:
                self._add_check(checker=s, target=inst)
            else:
                maybe_amov = self._maybe_add_anti(protected=s, checker=inst)
                if maybe_amov is not None:
                    before.append(maybe_amov)

        after: List[Instruction] = []
        if inst.p_bit or inst.c_bit:
            rotation = self._allocate_reg(inst)
            if rotation is not None:
                after.append(rotation)
        return (before, after)

    def on_finish(self, linear: List[Instruction]) -> None:
        """Drain anything left and patch AMOV operands."""
        self._linear = linear
        leftovers = [uid for uid in self._pending if uid not in self._allocated]
        if leftovers:
            # Should not happen: every pending op's predecessors are
            # scheduled ops, and scheduling completes. Guard anyway.
            raise RuntimeError(
                f"allocation incomplete for {len(leftovers)} operations"
            )
        for amov_inst, source in self._amov_fixups:
            base = self._base[amov_inst.uid]
            src_order = self._order[source.uid]
            if amov_inst.p_bit:
                dst_order = self._order[amov_inst.uid]
            else:
                dst_order = src_order  # cleanup-only
            src_offset = src_order - base
            dst_offset = dst_order - base
            if src_offset < 0 or src_offset >= self.machine.alias_registers:
                raise AliasRegisterOverflow(
                    f"AMOV source offset {src_offset} out of range"
                )
            amov_inst.amov_src = src_offset
            amov_inst.amov_dst = dst_offset
            amov_inst.ar_offset = dst_offset
            if not amov_inst.p_bit:
                self.stats.amovs_cleanup_only += 1
        self.stats.registers_allocated = self._next_order

    # ------------------------------------------------------------------
    # Constraint insertion
    # ------------------------------------------------------------------
    def _edge(self, u: Instruction, v: Instruction) -> None:
        self._out.setdefault(u.uid, set())
        self._in.setdefault(v.uid, set())
        if v.uid in self._out[u.uid]:
            return
        self._out[u.uid].add(v.uid)
        self._in[v.uid].add(u.uid)

    def _add_check(self, checker: Instruction, target: Instruction) -> None:
        """S ->check Y: S (unscheduled) must check Y (just scheduled)."""
        if not checker.c_bit:
            checker.c_bit = True
            self.stats.c_bit_ops += 1
        if not target.p_bit:
            target.p_bit = True
            self.stats.p_bit_ops += 1
        if (checker.uid, target.uid) in self._check_pairs:
            return
        self._check_pairs.add((checker.uid, target.uid))
        self._edge(checker, target)
        self._checkers_of.setdefault(target.uid, []).append(checker)
        self._torder.add_check_edge(checker, target)
        self.stats.check_constraints += 1

    def _maybe_add_anti(
        self, protected: Instruction, checker: Instruction
    ) -> Optional[Instruction]:
        """S ->anti Y (lines 13-15), with AMOV cycle breaking.

        Returns an AMOV instruction to splice before ``checker`` when a
        cycle had to be broken, else None.
        """
        s, y = protected, checker
        if not self.enable_anti:
            return None  # ablation: accept false-positive hazards
        if s.uid in self._allocated:
            # order(S) is already fixed below next_order; any future order
            # for Y's checks is >= next_order, so the anti-constraint is
            # trivially satisfied.
            return None
        if not (s.p_bit and y.c_bit):
            return None
        if (y.uid, s.uid) in self._check_pairs:
            return None
        try:
            self._torder.add_anti_edge(s, y)
        except OrderCycleError:
            if not self.enable_amov:
                # ablation: drop the anti-constraint instead of breaking
                # the cycle — the check stays correct, but Y may falsely
                # check S at runtime.
                return None
            return self._break_cycle_with_amov(s, y)
        self._edge(s, y)
        self._anti_pairs.add((s.uid, y.uid))
        self.stats.anti_constraints += 1
        return None

    def _break_cycle_with_amov(
        self, s: Instruction, y: Instruction
    ) -> Instruction:
        """Insert AMOV X' just before Y to relocate S's access range."""
        x_prime = amov(0, 0)  # operands patched in on_finish
        self._inst[x_prime.uid] = x_prime
        self._base[x_prime.uid] = self._next_order
        self._torder.set_t(x_prime, self._torder.t(y) - 1)
        self.stats.amovs_inserted += 1
        self._amov_fixups.append((x_prime, s))

        # Rewire unscheduled checkers Z ->check S to Z ->check X'.
        rewired = False
        remaining: List[Instruction] = []
        for z in self._checkers_of.get(s.uid, []):
            if z.uid in self._scheduled:
                remaining.append(z)
                continue
            rewired = True
            self._out[z.uid].discard(s.uid)
            self._in[s.uid].discard(z.uid)
            self._check_pairs.discard((z.uid, s.uid))
            self._check_pairs.add((z.uid, x_prime.uid))
            self._edge(z, x_prime)
            self._checkers_of.setdefault(x_prime.uid, []).append(z)
            self._torder.add_check_edge(z, x_prime)
        self._checkers_of[s.uid] = remaining

        if rewired:
            x_prime.p_bit = True
            # X' must stay earlier than Y in the register queue.
            self._torder.add_anti_edge(x_prime, y)
            self._edge(x_prime, y)
            self._anti_pairs.add((x_prime.uid, y.uid))
            self.stats.anti_constraints += 1
            # X' needs a register: enqueue for allocation.
            self._enqueue_for_allocation(x_prime)
        # S may have become ready (its unscheduled checkers left).
        if s.uid in self._pending and s.uid not in self._allocated:
            if not self._has_unallocated_preds(s):
                self._promote_to_ready(s)
                self._drain_ready()
        return x_prime

    # ------------------------------------------------------------------
    # Allocation with ready/delay queues (lines 56-75)
    # ------------------------------------------------------------------
    def _has_unallocated_preds(self, inst: Instruction) -> bool:
        # Constraint edges are removed the moment their source is
        # allocated (and sources are never allocated when an edge is
        # added), so every remaining in-edge is an unallocated pred.
        return bool(self._in.get(inst.uid))

    def _enqueue_for_allocation(self, inst: Instruction) -> None:
        self._pending.add(inst.uid)
        heappush(self._base_heap, (self._base[inst.uid], inst.uid))
        if inst.p_bit:
            self._pending_p += 1
        if not self._in.get(inst.uid):
            self._ready.append(inst.uid)

    def _promote_to_ready(self, inst: Instruction) -> None:
        # The uid may already sit in the ready deque; _drain_ready skips
        # entries that were already allocated, so stale entries are fine.
        self._ready.append(inst.uid)

    def _drain_ready(self) -> None:
        while self._ready:
            uid = self._ready.popleft()
            if uid in self._allocated:
                continue
            if self._in.get(uid):
                continue  # stale ready entry
            self._allocate_now(self._inst[uid])

    def _allocate_now(self, inst: Instruction) -> None:
        base = self._base[inst.uid]
        order = self._next_order
        self._order[inst.uid] = order
        offset = order - base
        if offset < 0:
            raise AliasRegisterOverflow(
                f"negative offset {offset} for {inst!r} (allocator bug)"
            )
        if offset >= self.machine.alias_registers:
            self.stats.overflow_aborts += 1
            raise AliasRegisterOverflow(
                f"offset {offset} >= {self.machine.alias_registers} "
                f"alias registers while allocating {inst!r}"
            )
        inst.ar_offset = offset
        inst.ar_order = order
        if offset >= self.stats.working_set:
            self.stats.working_set = offset + 1
        if inst.p_bit:
            self._next_order += 1
            self._pending_p -= 1
        self._allocated.add(inst.uid)
        self._pending.discard(inst.uid)
        # Releasing inst's outgoing constraint edges can ready successors.
        # Iterated in uid order: deterministic regardless of how many
        # instructions the process created before this superblock (set
        # iteration over uids is not).
        succs = self._out.get(inst.uid)
        if succs:
            for succ_uid in sorted(succs):
                self._in[succ_uid].discard(inst.uid)
                if succ_uid in self._pending and not self._in[succ_uid]:
                    self._ready.append(succ_uid)
            succs.clear()

    def _allocate_reg(self, inst: Instruction) -> Optional[Instruction]:
        """Record base, enqueue, drain, and emit a rotation if BASE moved."""
        self._base[inst.uid] = self._next_order
        self._enqueue_for_allocation(inst)
        self._drain_ready()
        delta = self._next_order - self._base[inst.uid]
        if delta > 0:
            self.stats.rotations_inserted += 1
            return rotate(delta)
        return None
