"""Bit-mask (Efficeon-style) alias register allocation.

The paper approximates Efficeon with a 16-entry *ordered* queue (SMARQ16);
this module implements the real thing end to end, so the bit-mask design
point can be evaluated directly: directly-indexed registers, each checking
memory operation carrying an explicit mask of the registers it must check.

Compared to SMARQ's ordered allocation this is *simpler software*:

* no ordering constraints at all — no partial order, no cycles, no AMOV;
* a register frees the moment its last checker is scheduled (no in-order
  rotation requirement), so the working set can even undercut SMARQ's;

and a *hard hardware wall*: the mask lives in the instruction encoding,
capping the file at :data:`~repro.hw.efficeon.EFFICEON_MAX_REGISTERS`
registers. When the free list runs dry the allocator refuses further
speculation, exactly like SMARQ's overflow throttling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.dependence import DependenceSet
from repro.hw.efficeon import EFFICEON_MAX_REGISTERS
from repro.ir.instruction import Instruction
from repro.sched.list_scheduler import AllocatorHook
from repro.sched.machine import MachineModel
from repro.smarq.allocator import AllocationStats


class BitmaskAllocator(AllocatorHook):
    """Scheduler hook performing bit-mask alias register allocation."""

    def __init__(
        self,
        machine: MachineModel,
        dependences: DependenceSet,
        program_order: List[Instruction],
        num_registers: int = EFFICEON_MAX_REGISTERS,
        reserve: int = 1,
    ) -> None:
        if num_registers > EFFICEON_MAX_REGISTERS:
            raise ValueError(
                f"bit-mask encoding caps at {EFFICEON_MAX_REGISTERS} registers"
            )
        self.machine = machine
        self.deps = dependences
        self.num_registers = num_registers
        self._reserve = reserve
        self.stats = AllocationStats()
        self.stats.memory_ops = sum(1 for i in program_order if i.is_mem)

        self._free: List[int] = list(range(num_registers - 1, -1, -1))
        self._scheduled: Set[int] = set()
        #: setter uid -> its register index
        self._index: Dict[int, int] = {}
        #: setter uid -> uids of checkers not yet scheduled
        self._pending_checkers: Dict[int, Set[int]] = {}
        #: checker uid -> target setter uids
        self._targets_of: Dict[int, Set[int]] = {}
        #: (checker_uid, target_uid) — same shape as SmarqAllocator's
        self._check_pairs: Set[Tuple[int, int]] = set()
        self._inst: Dict[int, Instruction] = {i.uid: i for i in program_order}
        self._live_peak = 0

    # ------------------------------------------------------------------
    # AllocatorHook
    # ------------------------------------------------------------------
    def speculation_allowed(self, inst: Instruction) -> bool:
        if len(self._free) > self._reserve:
            return True
        self.stats.speculation_throttled += 1
        return False

    def on_scheduled(
        self, inst: Instruction, cycle: int
    ) -> Tuple[List[Instruction], List[Instruction]]:
        self._scheduled.add(inst.uid)
        if not inst.is_mem:
            return ([], [])

        # New obligations: unscheduled dependence sources must check inst.
        for dep in self.deps.iter_incoming(inst):
            checker = dep.src
            if checker.uid in self._scheduled:
                continue  # in program order: bit-mask needs nothing
            if (checker.uid, inst.uid) in self._check_pairs:
                continue
            self._check_pairs.add((checker.uid, inst.uid))
            self.stats.check_constraints += 1
            if not checker.c_bit:
                checker.c_bit = True
                self.stats.c_bit_ops += 1
            if not inst.p_bit:
                inst.p_bit = True
                self.stats.p_bit_ops += 1
                self._allocate_register(inst)
            self._pending_checkers.setdefault(inst.uid, set()).add(checker.uid)
            self._targets_of.setdefault(checker.uid, set()).add(inst.uid)

        # If inst is itself a checker, build its mask and release targets.
        if inst.uid in self._targets_of:
            mask = inst.ar_mask or 0
            for target_uid in self._targets_of.pop(inst.uid):
                mask |= 1 << self._index[target_uid]
                pending = self._pending_checkers.get(target_uid)
                if pending is not None:
                    pending.discard(inst.uid)
                    if not pending:
                        self._release_register(target_uid)
            inst.ar_mask = mask
        return ([], [])

    def on_finish(self, linear: List[Instruction]) -> None:
        self.stats.registers_allocated = len(self._index)
        self.stats.working_set = self._live_peak

    # ------------------------------------------------------------------
    def _allocate_register(self, inst: Instruction) -> None:
        if not self._free:
            raise RuntimeError(
                "bit-mask register file exhausted (throttling bug)"
            )
        index = self._free.pop()
        self._index[inst.uid] = index
        inst.ar_offset = index  # direct index, never rotated
        live = self.num_registers - len(self._free)
        self._live_peak = max(self._live_peak, live)

    def _release_register(self, setter_uid: int) -> None:
        index = self._index[setter_uid]
        if index not in self._free:
            self._free.append(index)

    def index_of(self, inst: Instruction) -> Optional[int]:
        return self._index.get(inst.uid)
