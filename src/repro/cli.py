"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list``
    Show available benchmarks and schemes.
``run BENCH [--scheme S] [--scale F] [--certify/--no-certify] [--stats]``
    Run one benchmark under one scheme; print the run report.
    ``--certify``/``--no-certify`` force the static alias certifier on
    or off for any scheme; ``--stats`` adds the certify counters.
``compare BENCH [--scale F] [--jobs N] [--no-cache] [--stats]``
    Run one benchmark under every scheme; print a speedup table.
``figures [--only figN] [--scale F] [--suite a,b,c] [--jobs N]
[--no-cache] [--stats]``
    Regenerate the paper's tables/figures and print them.
``perf [--scale F] [--output BENCH.json] [--baseline BENCH.json]
[--batch-differential SCALE] [--profile OUT.prof]``
    Run the perf-benchmark harness (:mod:`repro.perf`): time each
    (benchmark, scheme) cell's interpret/translate/simulate phases plus
    the end-to-end serial cold ``figures`` path, and write a
    ``BENCH_*.json`` trajectory point (see ``docs/PERF.md``).
    ``--batch-differential SCALE`` adds the batch replay tier's
    same-process kill-switch comparison (on vs ``SMARQ_BATCH_WIDTH=0``).
    ``--profile OUT.prof`` instead runs the serial cold figures path
    once under :mod:`cProfile` and writes the profile for ``pstats`` /
    ``snakeviz``.
``fuzz [--seed N] [--cases N] [--time-budget S] [--oracles a,b]
[--minimize/--no-minimize] [--out-dir D]``
    Run the differential fuzzing campaign (:mod:`repro.fuzz`): generate
    adversarial guest programs and cross-check every configured pair of
    independent implementations; disagreements are delta-debugged to
    minimal repros under ``--out-dir`` (see ``docs/TESTING.md``).
    Exit status 1 if any oracle pair disagreed.
``serve [--host H] [--port P] [--jobs N] [--no-cache] [--memo-limit N]``
    Run the long-lived simulation/translation daemon
    (:mod:`repro.serve`): batched JSON job submission over a local TCP
    socket, in-flight dedupe, bounded result memo, streamed per-job
    results and a stats endpoint. Prints ``listening on host:port``
    once ready; runs until a drain shutdown request or Ctrl-C. See
    ``docs/SERVE.md``.
``load [--address H:P | --spawn] [--mix warm|cold|mixed] ...``
    Drive a serve daemon with the load generator: configurable batch
    mix and client concurrency, reporting p50/p99 latency, throughput
    and failures (``--out`` writes the JSON payload; ``--assert-p99-ms``
    / ``--assert-max-failed`` turn it into a CI gate).

``figures`` and ``compare`` route every simulation through the
:mod:`repro.engine` execution engine: ``--jobs N`` fans (benchmark,
scheme) cells across N worker processes, reports are cached persistently
under ``~/.cache/repro`` (disable with ``--no-cache``), and ``--stats``
prints the engine's cache/instrumentation summary after the output.
``--serve host:port`` instead sends every cell to a running daemon
(whose warm caches then do the work); output is byte-identical across
``--jobs`` settings and the ``--serve`` path.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.eval import (
    render_fig14,
    render_fig15,
    render_fig16,
    render_fig17,
    render_fig18,
    render_fig19,
    render_table1,
    run_fig14,
    run_fig15,
    run_fig16,
    run_fig17,
    run_fig18,
    run_fig19,
    run_table1,
)
from repro.eval import fig15 as _fig15
from repro.eval import fig16 as _fig16
from repro.eval.report import render_table
from repro.eval.suite import SuiteConfig, SuiteRunner
from repro.engine import (
    ExecutionEngine,
    NullCache,
    ReportCache,
    make_executor,
)
from repro.frontend.profiler import ProfilerConfig
from repro.sim.dbt import DbtSystem
from repro.sim.schemes import SCHEME_NAMES
from repro.workloads import CERT_BENCHMARKS, SPECFP_BENCHMARKS, make_benchmark

#: figure name -> (run, render, scheme keys to prefetch, runner setup)
_FIGURES = {
    "table1": (lambda runner: run_table1(), render_table1, (), None),
    "fig14": (run_fig14, render_fig14, ("smarq",), None),
    "fig15": (
        run_fig15,
        render_fig15,
        ("none",) + tuple(_fig15.SCHEMES),
        None,
    ),
    "fig16": (
        run_fig16,
        render_fig16,
        ("none", "smarq", _fig16.NO_STORE_REORDER_KEY),
        _fig16.register_variant,
    ),
    "fig17": (run_fig17, render_fig17, ("smarq",), None),
    "fig18": (run_fig18, render_fig18, ("smarq",), None),
    "fig19": (run_fig19, render_fig19, ("smarq",), None),
}


def _make_engine(args: argparse.Namespace):
    """Engine configured from the shared --jobs/--no-cache/--serve flags.

    With ``--serve host:port`` the returned engine is a
    :class:`~repro.serve.client.RemoteEngine` that ships every job to
    the daemon; the local flags (--jobs/--no-cache) are the server's
    business then.
    """
    if getattr(args, "serve", None):
        from repro.serve import RemoteEngine, ServeClient, parse_address

        return RemoteEngine(ServeClient(parse_address(args.serve)))
    cache = NullCache() if args.no_cache else ReportCache()
    return ExecutionEngine(executor=make_executor(args.jobs), cache=cache)


def _cmd_list(_args: argparse.Namespace) -> int:
    print("benchmarks:", " ".join(SPECFP_BENCHMARKS + CERT_BENCHMARKS))
    print("schemes:   ", " ".join(SCHEME_NAMES))
    print("figures:   ", " ".join(_FIGURES))
    return 0


def _run_one(bench: str, scheme: str, scale: float, certify=None, tracer=None):
    program = make_benchmark(bench, scale=scale)
    if certify is not None:
        import dataclasses

        from repro.sim.schemes import make_scheme

        built = make_scheme(scheme)
        scheme = dataclasses.replace(
            built,
            optimizer_config=dataclasses.replace(
                built.optimizer_config, certify=certify
            ),
        )
    system = DbtSystem(
        program,
        scheme,
        profiler_config=ProfilerConfig(hot_threshold=20),
        tracer=tracer,
    )
    return system.run()


def _cmd_run(args: argparse.Namespace) -> int:
    tracer = None
    if args.stats:
        from repro.engine.instrumentation import Tracer

        tracer = Tracer()
    report = _run_one(
        args.benchmark, args.scheme, args.scale,
        certify=args.certify, tracer=tracer,
    )
    print(f"benchmark           : {report.program}")
    print(f"scheme              : {report.scheme}")
    print(f"guest instructions  : {report.guest_instructions}")
    print(f"total cycles        : {report.total_cycles}")
    print(f"  interpreted       : {report.interp_cycles}")
    print(f"  translated        : {report.translated_cycles}")
    print(f"  optimizer         : {report.optimization_cycles} "
          f"({report.optimization_fraction * 100:.2f}%)")
    print(f"translations        : {report.translations}")
    print(f"region commits      : {report.region_commits}")
    print(f"side exits          : {report.side_exits}")
    print(f"alias exceptions    : {report.alias_exceptions} "
          f"(false positives {report.false_positive_exceptions})")
    print(f"re-optimizations    : {report.reoptimizations}")
    checks = sum(s.check_constraints for s in report.region_stats.values())
    print(f"check constraints   : {checks}")
    if tracer is not None:
        certified = tracer.counters.get("certify.pairs_certified", 0)
        dropped = tracer.counters.get("certify.deps_dropped", 0)
        rejected = tracer.counters.get("certify.rejected", 0)
        print(f"certify             : {certified} pairs certified, "
              f"{dropped} dependences dropped, "
              f"{rejected} certificates rejected")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    runner = SuiteRunner(
        SuiteConfig(
            benchmarks=[args.benchmark], scale=args.scale, hot_threshold=20
        ),
        engine=_make_engine(args),
    )
    runner.prefetch(SCHEME_NAMES)
    reports = {
        scheme: runner.report(args.benchmark, scheme)
        for scheme in SCHEME_NAMES
    }
    baseline = reports["none"].total_cycles
    rows = [
        [
            scheme,
            r.total_cycles,
            f"{baseline / r.total_cycles:.3f}x",
            r.alias_exceptions,
            r.reoptimizations,
        ]
        for scheme, r in reports.items()
    ]
    print(
        render_table(
            f"Scheme comparison: {args.benchmark} (scale {args.scale})",
            ["scheme", "cycles", "speedup", "alias exc", "re-opts"],
            rows,
        )
    )
    if args.stats:
        print()
        print(runner.engine.render_stats())
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    benchmarks = (
        [b.strip() for b in args.suite.split(",") if b.strip()]
        if args.suite
        else list(SPECFP_BENCHMARKS)
    )
    runner = SuiteRunner(
        SuiteConfig(benchmarks=benchmarks, scale=args.scale, hot_threshold=20),
        engine=_make_engine(args),
    )
    names = [args.only] if args.only else list(_FIGURES)
    for name in names:
        if name not in _FIGURES:
            print(f"unknown figure {name!r}; choose from {list(_FIGURES)}",
                  file=sys.stderr)
            return 2

    # Register variants and batch every needed cell up front so the
    # executor can fan them out; rendering below then hits the memo.
    keys: List[str] = []
    for name in names:
        _run, _render, needed, setup = _FIGURES[name]
        if setup is not None:
            setup(runner)
        keys.extend(k for k in needed if k not in keys)
    if keys:
        runner.prefetch(keys)

    for name in names:
        run, render, _needed, _setup = _FIGURES[name]
        print(render(run(runner)))
        print()
    if args.stats:
        print(runner.engine.render_stats())
    return 0


def _cmd_perf(args: argparse.Namespace) -> int:
    from repro.perf import PerfConfig, load_bench, run_perf, write_bench
    from repro.perf.harness import (
        attach_baseline,
        check_regression,
        render_summary,
    )

    if args.profile:
        import cProfile
        import pstats

        from repro.perf.harness import time_figures_cold

        profiler = cProfile.Profile()
        profiler.enable()
        result = time_figures_cold(args.figures_scale)
        profiler.disable()
        profiler.dump_stats(args.profile)
        print(
            f"figures cold (scale {result['scale']}, serial) : "
            f"{result['wall_s']:.2f}s under cProfile"
        )
        stats = pstats.Stats(profiler)
        stats.sort_stats("cumulative")
        print(f"wrote {args.profile}; top functions by cumulative time:")
        stats.print_stats(15)
        return 0

    benchmarks = (
        [b.strip() for b in args.benchmarks.split(",") if b.strip()]
        if args.benchmarks
        else None
    )
    schemes = (
        [s.strip() for s in args.schemes.split(",") if s.strip()]
        if args.schemes
        else None
    )
    config = PerfConfig(scale=args.scale, repeats=args.repeats)
    if benchmarks:
        config.benchmarks = benchmarks
    if schemes:
        config.schemes = schemes
    config.figures_scale = None if args.skip_figures else args.figures_scale

    payload = run_perf(config)
    if args.serve_load:
        from repro.perf.harness import measure_serve_load

        payload["serve_load"] = measure_serve_load(
            scale=args.scale,
            benchmarks=benchmarks,
            schemes=schemes,
        )
    if args.batch_differential > 0:
        from repro.perf.harness import measure_batch_differential

        payload["batch_differential"] = measure_batch_differential(
            benchmarks=benchmarks,
            scale=args.batch_differential,
            repeats=args.repeats,
        )
    if args.baseline:
        attach_baseline(payload, load_bench(args.baseline))
    write_bench(args.output, payload)
    print(render_summary(payload))
    print(f"\nwrote {args.output}")
    if args.fail_below > 0:
        failures = check_regression(payload, args.fail_below)
        if failures:
            for failure in failures:
                print(f"perf regression gate FAILED: {failure}")
            return 1
        print(f"perf regression gate passed (>= {args.fail_below:.2f}x)")
    return 0


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.fuzz import FuzzConfig, ORACLE_NAMES, render_stats, run_fuzz

    oracles = (
        tuple(o.strip() for o in args.oracles.split(",") if o.strip())
        if args.oracles
        else ORACLE_NAMES
    )
    for name in oracles:
        if name not in ORACLE_NAMES:
            print(
                f"unknown oracle {name!r}; choose from {list(ORACLE_NAMES)}",
                file=sys.stderr,
            )
            return 2
    config = FuzzConfig(
        seed=args.seed,
        cases=args.cases,
        time_budget=args.time_budget,
        oracles=oracles,
        minimize=args.minimize,
        engine_samples=args.engine_samples,
        out_dir=Path(args.out_dir),
    )
    stats = run_fuzz(config)
    print(render_stats(stats, config))
    return 0 if stats.ok else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.serve import ReproServer, ServeConfig

    config = ServeConfig(
        host=args.host,
        port=args.port,
        jobs=args.jobs,
        cache=not args.no_cache,
        cache_dir=Path(args.cache_dir) if args.cache_dir else None,
        memo_limit=args.memo_limit,
    )
    server = ReproServer(config)
    host, port = server.start()
    # The ready line is the spawn contract: `repro load --spawn` (and the
    # CI serve-smoke job) parse the address off it.
    print(f"repro serve listening on {host}:{port}", flush=True)
    try:
        server.wait()
    except KeyboardInterrupt:
        print("repro serve: interrupted, draining", flush=True)
        server.stop()
    return 0


def _cmd_load(args: argparse.Namespace) -> int:
    import contextlib
    import json

    from repro.serve import (
        LoadConfig,
        parse_address,
        render_load,
        run_load,
        spawned_server,
    )

    if bool(args.address) == bool(args.spawn):
        print(
            "load: give exactly one of --address host:port or --spawn",
            file=sys.stderr,
        )
        return 2
    config = LoadConfig(
        batches=args.batches,
        batch_size=args.batch_size,
        clients=args.clients,
        mix=args.mix,
        scale=args.scale,
    )
    if args.benchmarks:
        config.benchmarks = [
            b.strip() for b in args.benchmarks.split(",") if b.strip()
        ]
    if args.schemes:
        config.schemes = [
            s.strip() for s in args.schemes.split(",") if s.strip()
        ]
    try:
        config.validate()
    except ValueError as exc:
        print(f"load: {exc}", file=sys.stderr)
        return 2

    with contextlib.ExitStack() as stack:
        if args.spawn:
            address = stack.enter_context(spawned_server(jobs=args.jobs))
        else:
            address = parse_address(args.address)
        payload = run_load(address, config)
    print(render_load(payload))
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.out}")
    rc = 0
    if payload["failed"] > args.assert_max_failed >= 0:
        print(
            f"load gate FAILED: {payload['failed']} failed jobs "
            f"(max allowed {args.assert_max_failed})"
        )
        rc = 1
    if args.assert_p99_ms > 0 and payload["p99_ms"] > args.assert_p99_ms:
        print(
            f"load gate FAILED: p99 {payload['p99_ms']:.1f}ms "
            f"> bound {args.assert_p99_ms:.1f}ms"
        )
        rc = 1
    return rc


def _add_engine_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for the simulation sweep (default 1)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="skip the persistent report cache (~/.cache/repro)",
    )
    parser.add_argument(
        "--stats", action="store_true",
        help="print engine cache/instrumentation statistics",
    )
    parser.add_argument(
        "--serve", default="", metavar="HOST:PORT",
        help="send every job to a running `repro serve` daemon instead "
        "of simulating locally (--jobs/--no-cache are then the "
        "server's business)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SMARQ (MICRO 2012) reproduction: run workloads and "
        "regenerate the paper's experiments.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list benchmarks, schemes, figures")

    run_p = sub.add_parser("run", help="run one benchmark under one scheme")
    run_p.add_argument(
        "benchmark", choices=SPECFP_BENCHMARKS + CERT_BENCHMARKS
    )
    run_p.add_argument("--scheme", default="smarq", choices=SCHEME_NAMES)
    run_p.add_argument("--scale", type=float, default=0.25)
    run_p.add_argument(
        "--certify", action="store_true", default=None,
        help="force the static alias certifier on (any scheme)",
    )
    run_p.add_argument(
        "--no-certify", action="store_false", dest="certify",
        help="force the static alias certifier off",
    )
    run_p.add_argument(
        "--stats", action="store_true",
        help="also print certify counters from a run tracer",
    )

    cmp_p = sub.add_parser("compare", help="run one benchmark on all schemes")
    cmp_p.add_argument(
        "benchmark", choices=SPECFP_BENCHMARKS + CERT_BENCHMARKS
    )
    cmp_p.add_argument("--scale", type=float, default=0.25)
    _add_engine_flags(cmp_p)

    fig_p = sub.add_parser("figures", help="regenerate tables/figures")
    fig_p.add_argument("--only", default=None, help="one of: " + " ".join(_FIGURES))
    fig_p.add_argument("--scale", type=float, default=0.25)
    fig_p.add_argument("--suite", default="", help="comma-separated subset")
    _add_engine_flags(fig_p)

    perf_p = sub.add_parser(
        "perf", help="run the perf harness; write a BENCH_*.json"
    )
    perf_p.add_argument("--scale", type=float, default=0.1)
    perf_p.add_argument(
        "--figures-scale", type=float, default=0.1,
        help="scale for the end-to-end cold figures timing",
    )
    perf_p.add_argument(
        "--skip-figures", action="store_true",
        help="skip the end-to-end figures timing (quick cell sweep only)",
    )
    perf_p.add_argument("--repeats", type=int, default=3)
    perf_p.add_argument(
        "--benchmarks", default="",
        help="comma-separated benchmark subset (default: swim,art,equake)",
    )
    perf_p.add_argument(
        "--schemes", default="",
        help="comma-separated scheme subset (default: smarq,itanium,none)",
    )
    perf_p.add_argument("--output", default="BENCH_pr10.json")
    perf_p.add_argument(
        "--baseline", default="",
        help="previous BENCH json to embed and compute speedups against",
    )
    perf_p.add_argument(
        "--fail-below", type=float, default=0.0, metavar="RATIO",
        help="exit non-zero when the execute-phase or cell-sweep speedup "
        "vs --baseline falls below RATIO (the CI regression gate)",
    )
    perf_p.add_argument(
        "--batch-differential", type=float, default=0.0, metavar="SCALE",
        help="also measure the batch replay tier against its own "
        "SMARQ_BATCH_WIDTH=0 kill switch at SCALE (same process, "
        "interleaved legs) into the batch_differential section; "
        "benchmarks default to the loop-dominated set",
    )
    perf_p.add_argument(
        "--serve-load", action="store_true",
        help="also measure service-mode throughput/latency (cold CLI vs "
        "cold vs warm server) into the serve_load section",
    )
    perf_p.add_argument(
        "--profile", default="",
        help="profile the serial cold figures path with cProfile and "
        "write the stats to this file (skips the normal harness)",
    )

    fuzz_p = sub.add_parser(
        "fuzz", help="run the differential fuzzing campaign"
    )
    fuzz_p.add_argument(
        "--seed", type=int, default=0,
        help="first RNG seed; cases use seed, seed+1, ... (default 0)",
    )
    fuzz_p.add_argument(
        "--cases", type=int, default=200,
        help="number of generated cases (default 200)",
    )
    fuzz_p.add_argument(
        "--time-budget", type=float, default=0.0, metavar="SECONDS",
        help="stop early after this much wall time (0 = no limit)",
    )
    fuzz_p.add_argument(
        "--oracles", default="",
        help="comma-separated oracle subset (default: alloc,queue,"
        "schemes,plans,translate,backends,engine,serve)",
    )
    fuzz_p.add_argument(
        "--minimize", action="store_true", default=True,
        help="delta-debug disagreeing cases to minimal repros (default)",
    )
    fuzz_p.add_argument(
        "--no-minimize", action="store_false", dest="minimize",
        help="record disagreeing cases without minimizing",
    )
    fuzz_p.add_argument(
        "--engine-samples", type=int, default=8, metavar="N",
        help="cases that also run the (process-pool) engine oracle "
        "(sampled evenly; default 8)",
    )
    fuzz_p.add_argument(
        "--out-dir", default="fuzz-out",
        help="directory for failure corpus entries and pytest repros "
        "(default fuzz-out/)",
    )

    serve_p = sub.add_parser(
        "serve", help="run the warm batched simulation daemon"
    )
    serve_p.add_argument(
        "--host", default="127.0.0.1",
        help="bind address (default 127.0.0.1; the protocol is "
        "trusted-local — do not expose it beyond loopback)",
    )
    serve_p.add_argument(
        "--port", type=int, default=0,
        help="TCP port (default 0 = ephemeral; the ready line prints "
        "the chosen port)",
    )
    serve_p.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for simulation (default 1 = in-process)",
    )
    serve_p.add_argument(
        "--no-cache", action="store_true",
        help="skip the persistent report cache (~/.cache/repro)",
    )
    serve_p.add_argument(
        "--cache-dir", default="",
        help="report-cache directory override",
    )
    serve_p.add_argument(
        "--memo-limit", type=int, default=512, metavar="N",
        help="in-RAM result memo capacity in jobs, LRU-evicted "
        "(default 512; 0 disables the memo)",
    )

    load_p = sub.add_parser(
        "load", help="drive a serve daemon with the load generator"
    )
    load_p.add_argument(
        "--address", default="", metavar="HOST:PORT",
        help="target a running daemon",
    )
    load_p.add_argument(
        "--spawn", action="store_true",
        help="spawn a fresh daemon subprocess for the run instead",
    )
    load_p.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for a --spawn'd daemon (default 1)",
    )
    load_p.add_argument("--batches", type=int, default=4)
    load_p.add_argument("--batch-size", type=int, default=6)
    load_p.add_argument(
        "--clients", type=int, default=2,
        help="concurrent client connections (default 2)",
    )
    load_p.add_argument(
        "--mix", default="mixed", choices=("warm", "cold", "mixed"),
        help="request mix shape (default mixed)",
    )
    load_p.add_argument("--scale", type=float, default=0.05)
    load_p.add_argument(
        "--benchmarks", default="",
        help="comma-separated benchmark pool (default swim,art,equake)",
    )
    load_p.add_argument(
        "--schemes", default="",
        help="comma-separated scheme pool (default smarq,itanium,none)",
    )
    load_p.add_argument(
        "--out", default="",
        help="write the JSON latency/throughput payload here",
    )
    load_p.add_argument(
        "--assert-p99-ms", type=float, default=0.0, metavar="MS",
        help="exit non-zero when p99 latency exceeds MS (CI gate; "
        "0 = no gate)",
    )
    load_p.add_argument(
        "--assert-max-failed", type=int, default=-1, metavar="N",
        help="exit non-zero when more than N jobs failed (CI gate; "
        "-1 = no gate)",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handler = {
        "list": _cmd_list,
        "run": _cmd_run,
        "compare": _cmd_compare,
        "figures": _cmd_figures,
        "perf": _cmd_perf,
        "fuzz": _cmd_fuzz,
        "serve": _cmd_serve,
        "load": _cmd_load,
    }[args.command]
    return handler(args)


if __name__ == "__main__":
    raise SystemExit(main())
