"""VLIW instruction scheduling.

* :mod:`repro.sched.machine` — the in-order VLIW resource/latency model
  (the reproduction's stand-in for the paper's Table 2 parameters).
* :mod:`repro.sched.ddg` — data-dependence graph over a superblock
  (register flow/anti/output edges, control edges to side exits, and the
  memory dependences from :mod:`repro.analysis.dependence`).
* :mod:`repro.sched.list_scheduler` — cycle-driven list scheduler that the
  SMARQ allocator (:mod:`repro.smarq.allocator`) hooks into. It honours
  memory dependences in non-speculative mode and may break MAY-alias
  dependences in speculative mode (that breakage is exactly what the alias
  hardware then guards).
"""

from repro.sched.machine import FunctionalUnit, MachineModel, VLIW_DEFAULT
from repro.sched.ddg import DataDependenceGraph, DdgEdge, EdgeKind
from repro.sched.list_scheduler import ListScheduler, ScheduleResult, SchedulerConfig
from repro.sched.modulo import (
    ModuloSchedule,
    ModuloSchedulingError,
    alias_register_requirement,
    modulo_schedule,
)

__all__ = [
    "DataDependenceGraph",
    "DdgEdge",
    "EdgeKind",
    "FunctionalUnit",
    "ListScheduler",
    "MachineModel",
    "ModuloSchedule",
    "ModuloSchedulingError",
    "ScheduleResult",
    "SchedulerConfig",
    "VLIW_DEFAULT",
    "alias_register_requirement",
    "modulo_schedule",
]
