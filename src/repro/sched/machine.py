"""In-order VLIW machine model.

The paper evaluates on an internal Intel VLIW whose Table 2 parameters are
garbled in our source text; DESIGN.md Section 6 records the plausible
configuration we substitute. The model answers two questions for the
scheduler and the timing simulator:

* which functional unit class an opcode occupies, and how many slots of
  each class one bundle (one cycle) offers;
* the result latency of each opcode (cycles until a dependent may issue).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from functools import cached_property
from typing import Dict, Mapping, Tuple

from repro.ir.instruction import Instruction, Opcode


class FunctionalUnit(enum.Enum):
    MEM = "mem"
    ALU = "alu"
    FPU = "fpu"
    BRANCH = "branch"


_UNIT_OF: Dict[Opcode, FunctionalUnit] = {
    Opcode.LD: FunctionalUnit.MEM,
    Opcode.ST: FunctionalUnit.MEM,
    Opcode.ADD: FunctionalUnit.ALU,
    Opcode.SUB: FunctionalUnit.ALU,
    Opcode.MUL: FunctionalUnit.ALU,
    Opcode.AND: FunctionalUnit.ALU,
    Opcode.OR: FunctionalUnit.ALU,
    Opcode.XOR: FunctionalUnit.ALU,
    Opcode.SHL: FunctionalUnit.ALU,
    Opcode.SHR: FunctionalUnit.ALU,
    Opcode.MOV: FunctionalUnit.ALU,
    Opcode.MOVI: FunctionalUnit.ALU,
    Opcode.CMP: FunctionalUnit.ALU,
    Opcode.FADD: FunctionalUnit.FPU,
    Opcode.FSUB: FunctionalUnit.FPU,
    Opcode.FMUL: FunctionalUnit.FPU,
    Opcode.FDIV: FunctionalUnit.FPU,
    Opcode.FMA: FunctionalUnit.FPU,
    Opcode.BR: FunctionalUnit.BRANCH,
    Opcode.BEQ: FunctionalUnit.BRANCH,
    Opcode.BNE: FunctionalUnit.BRANCH,
    Opcode.BLT: FunctionalUnit.BRANCH,
    Opcode.BGE: FunctionalUnit.BRANCH,
    Opcode.EXIT: FunctionalUnit.BRANCH,
    # Queue-management pseudo ops issue on the ALU (cheap bookkeeping).
    Opcode.NOP: FunctionalUnit.ALU,
    Opcode.ROTATE: FunctionalUnit.ALU,
    Opcode.AMOV: FunctionalUnit.ALU,
}


@dataclass(frozen=True)
class MachineModel:
    """Issue-width, per-unit slot counts, and opcode latencies."""

    name: str = "vliw4"
    issue_width: int = 4
    slots: Mapping[FunctionalUnit, int] = field(
        default_factory=lambda: {
            FunctionalUnit.MEM: 2,
            FunctionalUnit.ALU: 3,
            FunctionalUnit.FPU: 2,
            FunctionalUnit.BRANCH: 1,
        }
    )
    latencies: Mapping[Opcode, int] = field(default_factory=dict)
    alias_registers: int = 64
    #: cycles to create an atomic-region checkpoint at region entry
    checkpoint_cycles: int = 2
    #: fixed pipeline penalty for an atomic-region rollback (plus the
    #: wasted region cycles, which the simulator accounts separately)
    rollback_penalty: int = 200

    def unit_of(self, inst: Instruction) -> FunctionalUnit:
        return _UNIT_OF[inst.opcode]

    def slots_for(self, unit: FunctionalUnit) -> int:
        return self.slots.get(unit, 0)

    def latency_of(self, inst: Instruction) -> int:
        lat = self.latencies.get(inst.opcode)
        if lat is not None:
            return lat
        return _DEFAULT_LATENCIES[inst.opcode]

    @cached_property
    def op_table(self) -> Dict[Opcode, Tuple[FunctionalUnit, int]]:
        """opcode -> (functional unit, result latency), fully resolved.

        The scheduler and the VLIW trace compiler look every instruction
        up here exactly once instead of hashing ``Opcode`` members through
        :meth:`unit_of`/:meth:`latency_of` on every issue — those two
        lookups dominated the profile of the simulation core. (Lazy and
        cached via the instance ``__dict__``, which a frozen dataclass
        still permits.)"""
        return {
            op: (
                _UNIT_OF[op],
                self.latencies.get(op, _DEFAULT_LATENCIES[op]),
            )
            for op in _UNIT_OF
        }

    def with_alias_registers(self, count: int) -> "MachineModel":
        """A copy of this model with a different alias register count."""
        return MachineModel(
            name=f"{self.name}-ar{count}",
            issue_width=self.issue_width,
            slots=dict(self.slots),
            latencies=dict(self.latencies),
            alias_registers=count,
            checkpoint_cycles=self.checkpoint_cycles,
            rollback_penalty=self.rollback_penalty,
        )


_DEFAULT_LATENCIES: Dict[Opcode, int] = {
    Opcode.LD: 3,
    Opcode.ST: 1,
    Opcode.ADD: 1,
    Opcode.SUB: 1,
    Opcode.MUL: 3,
    Opcode.AND: 1,
    Opcode.OR: 1,
    Opcode.XOR: 1,
    Opcode.SHL: 1,
    Opcode.SHR: 1,
    Opcode.MOV: 1,
    Opcode.MOVI: 1,
    Opcode.CMP: 1,
    Opcode.FADD: 4,
    Opcode.FSUB: 4,
    Opcode.FMUL: 4,
    Opcode.FDIV: 12,
    Opcode.FMA: 4,
    Opcode.BR: 1,
    Opcode.BEQ: 1,
    Opcode.BNE: 1,
    Opcode.BLT: 1,
    Opcode.BGE: 1,
    Opcode.EXIT: 1,
    Opcode.NOP: 1,
    Opcode.ROTATE: 1,
    Opcode.AMOV: 1,
}

#: The reproduction's stand-in for the paper's Table 2 machine.
VLIW_DEFAULT = MachineModel()
