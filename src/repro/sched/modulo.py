"""Iterative modulo scheduling for loop regions (paper Section 8).

The paper's final future-work item is integrating SMARQ's allocation with
software pipelining. This module supplies the scheduling half and the
analysis connecting the two: a classic iterative modulo scheduler (Rau's
IMS, simplified) over a loop region's dependence graph *including
loop-carried edges*, plus an estimator for how many alias registers a
pipelined kernel needs at a given initiation interval.

Why the register analysis matters: in a pipelined kernel a speculative
load from iteration ``i+d`` executes before iteration ``i``'s stores, so
its alias register must stay live for ``d`` whole kernel iterations — the
working set scales with overlap depth (stage count), which is exactly the
paper's argument that loop-level optimization needs *scalable* alias
registers.

Scope: the scheduler produces and verifies kernels (II, per-op issue
slots, stage counts) and the register-pressure analysis; generating
executable prologue/epilogue code is out of scope (DESIGN.md notes the
substitution). Everything here is validated by construction checks:
modulo resource legality and dependence legality across iterations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.aliasinfo import AliasAnalysis
from repro.analysis.dependence import Dependence
from repro.ir.instruction import Instruction, Opcode
from repro.ir.superblock import Superblock
from repro.opt.unroll import is_loop_region, renameable_registers
from repro.sched.machine import FunctionalUnit, MachineModel


@dataclass(frozen=True)
class ModuloEdge:
    """Dependence edge with an iteration distance.

    ``distance`` 0 = same iteration; 1 = loop-carried (dst of the *next*
    iteration depends on src of this one). ``breakable`` marks MAY-alias
    memory edges that alias hardware lets the scheduler ignore.
    """

    src: Instruction
    dst: Instruction
    latency: int
    distance: int
    breakable: bool = False


@dataclass
class ModuloSchedule:
    """A scheduled kernel."""

    ii: int
    #: uid -> absolute issue slot (stage = slot // ii, row = slot % ii)
    slot: Dict[int, int]
    stages: int
    res_mii: int
    rec_mii: int
    #: (setter, checker, distance) — cross/in-iteration check obligations
    check_obligations: List[Tuple[Instruction, Instruction, int]] = field(
        default_factory=list
    )

    def stage_of(self, inst: Instruction) -> int:
        return self.slot[inst.uid] // self.ii

    def row_of(self, inst: Instruction) -> int:
        return self.slot[inst.uid] % self.ii


class ModuloSchedulingError(Exception):
    """No legal kernel found within the II/budget limits."""


# ----------------------------------------------------------------------
# Dependence graph with loop-carried edges
# ----------------------------------------------------------------------
def build_modulo_edges(
    body: List[Instruction],
    machine: MachineModel,
    analysis: Optional[AliasAnalysis] = None,
    memory_dependences: Optional[List[Dependence]] = None,
    speculate: bool = True,
) -> List[ModuloEdge]:
    """Dependence edges of one loop body, same- and cross-iteration.

    Register edges: flow/anti/output within the iteration, plus carried
    flow edges for loop-carried registers (read-before-write in the body).
    Memory edges come from ``memory_dependences`` (distance 0) and are
    replicated at distance 1 for the cross-iteration direction; MAY edges
    are breakable when ``speculate``.
    """
    edges: List[ModuloEdge] = []
    last_def: Dict[int, Instruction] = {}
    uses_since: Dict[int, List[Instruction]] = {}
    first_def: Dict[int, Instruction] = {}

    for inst in body:
        for reg in inst.uses():
            producer = last_def.get(reg)
            if producer is not None:
                edges.append(
                    ModuloEdge(producer, inst, machine.latency_of(producer), 0)
                )
            uses_since.setdefault(reg, []).append(inst)
        for reg in inst.defs():
            previous = last_def.get(reg)
            if previous is not None:
                edges.append(ModuloEdge(previous, inst, 1, 0))
            for user in uses_since.get(reg, ()):
                if user is not inst:
                    edges.append(ModuloEdge(user, inst, 0, 0))
            last_def[reg] = inst
            uses_since[reg] = []
            first_def.setdefault(reg, inst)

    # Loop-carried register edges: the body's last def of r reaches the
    # next iteration's first use of r (registers read before any write).
    carried = set(first_def) - renameable_registers(body)
    first_use: Dict[int, Instruction] = {}
    for inst in body:
        for reg in inst.uses():
            first_use.setdefault(reg, inst)
    for reg, producer in last_def.items():
        user = first_use.get(reg)
        if user is None:
            continue
        if reg in carried or reg not in renameable_registers(body):
            edges.append(
                ModuloEdge(producer, user, machine.latency_of(producer), 1)
            )

    for dep in memory_dependences or ():
        if dep.extended:
            continue
        breakable = speculate and not dep.must
        edges.append(
            ModuloEdge(dep.src, dep.dst, 1, 0, breakable=breakable)
        )
        # the same pair also constrains consecutive iterations
        edges.append(
            ModuloEdge(dep.dst, dep.src, 1, 1, breakable=breakable)
        )
    return edges


# ----------------------------------------------------------------------
# MII bounds
# ----------------------------------------------------------------------
def resource_mii(body: List[Instruction], machine: MachineModel) -> int:
    """ResMII: per-unit occupancy bound."""
    counts: Dict[FunctionalUnit, int] = {}
    for inst in body:
        unit = machine.unit_of(inst)
        counts[unit] = counts.get(unit, 0) + 1
    best = 1
    for unit, count in counts.items():
        slots = max(1, machine.slots_for(unit))
        best = max(best, math.ceil(count / slots))
    # total issue width is a bound too
    best = max(best, math.ceil(len(body) / machine.issue_width))
    return best


def recurrence_mii(
    body: List[Instruction], edges: List[ModuloEdge]
) -> int:
    """RecMII via Floyd-Warshall-style maximal cost-to-distance ratio.

    For every cycle C in the (unbreakable) dependence graph,
    II >= ceil(sum latency / sum distance). Computed by binary search on
    II with a longest-path feasibility check (edge weight
    ``latency - II * distance`` must admit no positive cycle).
    """
    hard = [e for e in edges if not e.breakable]
    if not hard:
        return 1
    uids = {inst.uid for e in hard for inst in (e.src, e.dst)}
    index = {uid: i for i, uid in enumerate(sorted(uids))}
    n = len(index)

    def feasible(ii: int) -> bool:
        # Bellman-Ford positive-cycle detection on weight lat - ii*dist.
        dist = [0.0] * n
        for _ in range(n):
            changed = False
            for e in hard:
                u, v = index[e.src.uid], index[e.dst.uid]
                w = e.latency - ii * e.distance
                if dist[u] + w > dist[v]:
                    dist[v] = dist[u] + w
                    changed = True
            if not changed:
                return True
        # one more relaxation: improvement means a positive cycle
        for e in hard:
            u, v = index[e.src.uid], index[e.dst.uid]
            if dist[u] + (e.latency - ii * e.distance) > dist[v]:
                return False
        return True

    lo, hi = 1, 1 + sum(e.latency for e in hard)
    while lo < hi:
        mid = (lo + hi) // 2
        if feasible(mid):
            hi = mid
        else:
            lo = mid + 1
    return lo


# ----------------------------------------------------------------------
# Iterative modulo scheduling
# ----------------------------------------------------------------------
def modulo_schedule(
    region: Superblock,
    machine: MachineModel,
    analysis: Optional[AliasAnalysis] = None,
    memory_dependences: Optional[List[Dependence]] = None,
    speculate: bool = True,
    max_ii: Optional[int] = None,
    budget_factor: int = 8,
) -> ModuloSchedule:
    """Schedule a loop region's kernel at the smallest feasible II.

    Raises :class:`ModuloSchedulingError` if the region is not a loop or
    no kernel fits within ``max_ii``.
    """
    if not is_loop_region(region):
        raise ModuloSchedulingError("region is not a loop (no back edge)")
    body = [
        inst for inst in region.instructions[:-1] if not inst.is_branch
    ]
    if not body:
        raise ModuloSchedulingError("empty loop body")

    edges = build_modulo_edges(
        body, machine, analysis, memory_dependences, speculate
    )
    res_mii = resource_mii(body, machine)
    rec_mii = recurrence_mii(body, edges)
    mii = max(res_mii, rec_mii)
    ceiling = max_ii or (mii + len(body) + 8)

    incoming: Dict[int, List[ModuloEdge]] = {}
    for e in edges:
        if not e.breakable:
            incoming.setdefault(e.dst.uid, []).append(e)

    # priority: critical-path height over unbreakable distance-0 edges
    height: Dict[int, int] = {}
    for inst in reversed(body):
        best = 0
        for e in edges:
            if e.src is inst and not e.breakable and e.distance == 0:
                best = max(best, e.latency + height.get(e.dst.uid, 0))
        height[inst.uid] = best
    order = sorted(body, key=lambda i: (-height[i.uid], i.uid))

    for ii in range(mii, ceiling + 1):
        slot = _try_schedule(order, incoming, machine, ii, budget_factor)
        if slot is not None:
            stages = 1 + max(s // ii for s in slot.values())
            obligations = _check_obligations(edges, slot, ii)
            return ModuloSchedule(
                ii=ii,
                slot=slot,
                stages=stages,
                res_mii=res_mii,
                rec_mii=rec_mii,
                check_obligations=obligations,
            )
    raise ModuloSchedulingError(f"no kernel found up to II={ceiling}")


def _try_schedule(
    order: List[Instruction],
    incoming: Dict[int, List[ModuloEdge]],
    machine: MachineModel,
    ii: int,
    budget_factor: int,
) -> Optional[Dict[int, int]]:
    """One IMS attempt at a fixed II; returns uid -> slot or None."""
    slot: Dict[int, int] = {}
    # modulo reservation table: row -> unit -> occupying uids
    table: Dict[int, Dict[FunctionalUnit, List[int]]] = {
        r: {} for r in range(ii)
    }
    budget = budget_factor * len(order) + 32
    worklist = list(order)
    horizon = ii * (len(order) + 4)

    def unplace(uid: int) -> None:
        s = slot.pop(uid)
        unit = unit_of[uid]
        table[s % ii][unit].remove(uid)

    unit_of = {inst.uid: machine.unit_of(inst) for inst in order}
    by_uid = {inst.uid: inst for inst in order}

    while worklist:
        if budget <= 0:
            return None
        budget -= 1
        inst = worklist.pop(0)
        earliest = 0
        for e in incoming.get(inst.uid, ()):
            if e.src.uid in slot:
                earliest = max(
                    earliest, slot[e.src.uid] + e.latency - ii * e.distance
                )
        earliest = max(0, earliest)
        placed = False
        for s in range(earliest, earliest + ii):
            row = s % ii
            unit = unit_of[inst.uid]
            occupants = table[row].setdefault(unit, [])
            row_total = sum(len(v) for v in table[row].values())
            if (
                len(occupants) < machine.slots_for(unit)
                and row_total < machine.issue_width
            ):
                slot[inst.uid] = s
                occupants.append(inst.uid)
                placed = True
                break
        if not placed:
            # force placement at `earliest`, evicting the conflict (IMS)
            s = earliest
            if s > horizon:
                return None
            row = s % ii
            unit = unit_of[inst.uid]
            occupants = table[row].setdefault(unit, [])
            if occupants:
                evicted = occupants[0]
                unplace(evicted)
                worklist.append(by_uid[evicted])
            slot[inst.uid] = s
            occupants.append(inst.uid)
        # any already-placed successor now violated? re-queue it
        for uid in list(slot):
            for e in incoming.get(uid, ()):
                if e.src.uid in slot and uid in slot:
                    if slot[uid] < slot[e.src.uid] + e.latency - ii * e.distance:
                        unplace(uid)
                        worklist.append(by_uid[uid])
                        break
    return slot


def _check_obligations(
    edges: List[ModuloEdge], slot: Dict[int, int], ii: int
) -> List[Tuple[Instruction, Instruction, int]]:
    """Broken MAY edges whose endpoints ended up reordered in the kernel.

    A breakable edge (src before dst, distance d) is *violated* — needs a
    runtime check — when dst issues earlier than src's completion across
    the distance: slot(dst) < slot(src) + 1 - ii*d. The checker is the
    operation that executes later; the live distance (in kernel
    iterations) of the protected register is the stage gap.
    """
    obligations = []
    for e in edges:
        if not e.breakable:
            continue
        if e.src.uid not in slot or e.dst.uid not in slot:
            continue
        if slot[e.dst.uid] < slot[e.src.uid] + e.latency - ii * e.distance:
            stage_gap = abs(slot[e.src.uid] - slot[e.dst.uid]) // ii + e.distance
            obligations.append((e.dst, e.src, max(1, stage_gap)))
    return obligations


def alias_register_requirement(schedule: ModuloSchedule) -> int:
    """Estimated alias registers the pipelined kernel needs.

    Each protected (set) operation's register must survive from its issue
    until its latest checker, measured in kernel iterations: a register
    set in stage s and checked ``d`` iterations later coexists with the
    same op's registers from ``d`` other in-flight iterations. Requirement
    = sum over protected ops of their maximum live distance (+1 for the
    current iteration's instance).
    """
    live: Dict[int, int] = {}
    for checker, target, distance in schedule.check_obligations:
        live[target.uid] = max(live.get(target.uid, 0), distance + 1)
    return sum(live.values())
