"""Data dependence graph over a superblock.

Edges:

* register **flow** (def -> use), **anti** (use -> def), **output**
  (def -> def), each with the producing op's latency (anti/output carry
  latency 0/1 respectively — in-order VLIW semantics);
* **control**: side-exit branches pin all earlier-in-program-order stores
  (a store may not move above a branch it could escape through; loads MAY
  hoist above branches — that is control speculation, safe in our atomic
  regions because rollback undoes everything), and nothing may move above
  the region's final branch;
* **memory**: the dependences from :mod:`repro.analysis.dependence`. Each
  memory edge is tagged with whether it is breakable by alias speculation
  (MAY alias) or not (MUST alias).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.dependence import Dependence
from repro.ir.instruction import Instruction


class EdgeKind(enum.Enum):
    FLOW = "flow"
    ANTI = "anti"
    OUTPUT = "output"
    CONTROL = "control"
    MEMORY = "memory"


@dataclass(frozen=True)
class DdgEdge:
    src: Instruction
    dst: Instruction
    kind: EdgeKind
    latency: int = 0
    #: memory edges only: True when the optimizer may speculatively break
    #: this edge (MAY alias) relying on alias hardware.
    speculative_breakable: bool = False

    def __repr__(self) -> str:
        return (
            f"<{self.src!r} -{self.kind.value}/{self.latency}-> {self.dst!r}"
            f"{' (spec)' if self.speculative_breakable else ''}>"
        )


class DataDependenceGraph:
    """DDG in original program order, built once per superblock."""

    def __init__(
        self,
        block,
        machine,
        memory_dependences: Iterable[Dependence] = (),
        allow_store_reorder: bool = True,
        speculation_policy: str = "full",
        _structural: Optional[Tuple[Tuple[int, int, str, int, bool], ...]] = None,
    ) -> None:
        """``speculation_policy`` is ``"full"`` (any MAY-alias pair may be
        reordered) or ``"loads_only"`` (only loads may hoist above stores —
        the ALAT restriction). ``_structural`` replays a previously built
        graph's edge list (see :meth:`structural`) instead of deriving the
        edges — the translation cache's DDG memo."""
        if speculation_policy not in ("full", "loads_only"):
            raise ValueError(f"unknown speculation policy {speculation_policy!r}")
        self.block = block
        self.machine = machine
        self._speculation_policy = speculation_policy
        self._succ: Dict[int, List[DdgEdge]] = {}
        self._pred: Dict[int, List[DdgEdge]] = {}
        self._insts: Dict[int, Instruction] = {}
        #: every edge in global insertion order (the structural memo form)
        self._edges: List[DdgEdge] = []
        #: dedup index: (src_uid, dst_uid, kind) -> highest latency kept
        self._best: Dict[Tuple[int, int, EdgeKind], int] = {}
        for inst in block:
            self._succ[inst.uid] = []
            self._pred[inst.uid] = []
            self._insts[inst.uid] = inst
        if _structural is not None:
            self._replay_structural(block, _structural)
        else:
            self._build_register_edges(block, machine)
            self._build_control_edges(block)
            self._build_memory_edges(
                block, memory_dependences, allow_store_reorder
            )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _add(self, edge: DdgEdge) -> None:
        if edge.src is edge.dst:
            return
        # Duplicate (src, dst, kind) edges (e.g. a register used twice)
        # keep only the highest latency; successive survivors strictly
        # increase, so one running maximum decides in O(1).
        key = (edge.src.uid, edge.dst.uid, edge.kind)
        best = self._best.get(key)
        if best is not None and edge.latency <= best:
            return
        self._best[key] = edge.latency
        self._succ[edge.src.uid].append(edge)
        self._pred[edge.dst.uid].append(edge)
        self._edges.append(edge)

    def _build_register_edges(self, block, machine) -> None:
        last_def: Dict[int, Instruction] = {}
        uses_since_def: Dict[int, List[Instruction]] = {}
        for inst in block:
            for reg in inst.uses():
                producer = last_def.get(reg)
                if producer is not None:
                    self._add(
                        DdgEdge(
                            producer,
                            inst,
                            EdgeKind.FLOW,
                            latency=machine.latency_of(producer),
                        )
                    )
                uses_since_def.setdefault(reg, []).append(inst)
            for reg in inst.defs():
                previous = last_def.get(reg)
                if previous is not None:
                    self._add(DdgEdge(previous, inst, EdgeKind.OUTPUT, latency=1))
                for user in uses_since_def.get(reg, ()):
                    self._add(DdgEdge(user, inst, EdgeKind.ANTI, latency=0))
                last_def[reg] = inst
                uses_since_def[reg] = []

    def _build_control_edges(self, block) -> None:
        instructions = list(block)
        branches = [i for i in instructions if i.is_branch]
        if not branches:
            return
        final = instructions[-1]
        # Each branch pins every *later* store (a store may not become
        # architectural on a path that already left the region) and every
        # later branch (branches stay ordered). Only stores/branches can be
        # edge targets, so scan that subsequence instead of the whole block.
        targets = [
            (idx, inst)
            for idx, inst in enumerate(instructions)
            if inst.is_store or inst.is_branch
        ]
        positions = {inst.uid: idx for idx, inst in enumerate(instructions)}
        for branch in branches:
            bpos = positions[branch.uid]
            for ipos, inst in targets:
                if ipos <= bpos:
                    continue
                if inst.is_store:
                    self._add(DdgEdge(branch, inst, EdgeKind.CONTROL, latency=0))
                # Branches stay in order relative to each other.
                if inst.is_branch and inst is not branch:
                    self._add(DdgEdge(branch, inst, EdgeKind.CONTROL, latency=0))
        # Nothing moves below the terminating branch.
        if final.is_branch:
            for inst in instructions[:-1]:
                self._add(DdgEdge(inst, final, EdgeKind.CONTROL, latency=0))

    def _build_memory_edges(
        self,
        block,
        memory_dependences: Iterable[Dependence],
        allow_store_reorder: bool,
    ) -> None:
        positions = {inst.uid: idx for idx, inst in enumerate(block)}
        for dep in memory_dependences:
            if dep.extended:
                # Extended dependences do not order the schedule; they only
                # produce constraints (the allocator consumes them directly).
                continue
            if dep.src.uid not in positions or dep.dst.uid not in positions:
                continue
            breakable = not dep.must
            if (
                breakable
                and not allow_store_reorder
                and dep.src.is_store
                and dep.dst.is_store
            ):
                # Store-store reordering disabled (Itanium model / Fig 16).
                breakable = False
            if breakable and self._speculation_policy == "loads_only":
                # Only "hoist later load above earlier store" is breakable.
                breakable = dep.dst.is_load

            self._add(
                DdgEdge(
                    dep.src,
                    dep.dst,
                    EdgeKind.MEMORY,
                    latency=1 if dep.src.is_store or dep.dst.is_store else 0,
                    speculative_breakable=breakable,
                )
            )

    # ------------------------------------------------------------------
    # Structural memoization (translation cache)
    # ------------------------------------------------------------------
    def structural(self) -> Tuple[Tuple[int, int, str, int, bool], ...]:
        """Identity-free form of the edge list: ``(src_position,
        dst_position, kind, latency, breakable)`` in global insertion
        order. Replaying it over any block with identical content rebuilds
        a graph whose per-instruction edge lists match this one's exactly.
        """
        positions = {
            inst.uid: idx for idx, inst in enumerate(self.block)
        }
        return tuple(
            (
                positions[e.src.uid],
                positions[e.dst.uid],
                e.kind.value,
                e.latency,
                e.speculative_breakable,
            )
            for e in self._edges
        )

    def _replay_structural(
        self, block, structural: Tuple[Tuple[int, int, str, int, bool], ...]
    ) -> None:
        instructions = list(block)
        for src_pos, dst_pos, kind, latency, breakable in structural:
            edge = DdgEdge(
                instructions[src_pos],
                instructions[dst_pos],
                EdgeKind(kind),
                latency=latency,
                speculative_breakable=breakable,
            )
            # Already deduplicated at build time: append directly.
            self._succ[edge.src.uid].append(edge)
            self._pred[edge.dst.uid].append(edge)
            self._edges.append(edge)

    @classmethod
    def from_structural(
        cls,
        block,
        machine,
        structural: Tuple[Tuple[int, int, str, int, bool], ...],
        speculation_policy: str = "full",
    ) -> "DataDependenceGraph":
        """Rebuild a graph from :meth:`structural` output (cache hit)."""
        return cls(
            block,
            machine,
            speculation_policy=speculation_policy,
            _structural=structural,
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def successors(self, inst: Instruction) -> List[DdgEdge]:
        return list(self._succ[inst.uid])

    def predecessors(self, inst: Instruction) -> List[DdgEdge]:
        return list(self._pred[inst.uid])

    def iter_successors(self, inst: Instruction) -> List[DdgEdge]:
        """:meth:`successors` without the defensive copy — callers must
        not mutate the result (hot path: scheduler prep)."""
        return self._succ[inst.uid]

    def iter_predecessors(self, inst: Instruction) -> List[DdgEdge]:
        """:meth:`predecessors` without the defensive copy."""
        return self._pred[inst.uid]

    def instructions(self) -> List[Instruction]:
        return [self._insts[uid] for uid in self._insts]

    def edge_count(self) -> int:
        return sum(len(edges) for edges in self._succ.values())

    def critical_path_length(self) -> int:
        """Longest latency-weighted path (ignoring breakable memory edges
        is the *speculative* height; this returns the conservative one)."""
        memo: Dict[int, int] = {}

        order = list(self._insts)
        # The block is in program order and all edges point forward except
        # none (we never add backward edges), so a single reverse pass works.
        for uid in reversed(order):
            inst = self._insts[uid]
            best = 0
            for edge in self._succ[uid]:
                best = max(best, edge.latency + memo.get(edge.dst.uid, 0))
            memo[uid] = best
        return max(memo.values(), default=0)
