"""Cycle-driven list scheduler with speculative memory reordering.

The scheduler fills time slots in increasing cycle order (the property the
paper's Figure 13 relies on: once an instruction is scheduled, everything
scheduled later occupies the same or a later slot). It runs in two modes:

* **speculation mode** — breakable memory edges (MAY-alias dependences) are
  ignored for readiness, so loads can hoist above potentially aliasing
  stores and stores can reorder among themselves. Every time that actually
  happens, the attached :class:`AllocatorHook` (the SMARQ allocator) records
  the check/anti constraints and allocates alias registers.
* **non-speculation mode** — all memory edges are honoured; no new
  speculation is created, letting pending alias registers drain (overflow
  prevention, paper Section 5.3).

The scheduler consults the hook before making an instruction speculatively
ready, and after scheduling each instruction; the hook may splice pseudo
operations (``AMOV`` before, ``ROTATE`` after) into the linear output.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, List, Optional, Sequence, Tuple

from repro.ir.instruction import Instruction
from repro.sched.ddg import DataDependenceGraph, EdgeKind
from repro.sched.machine import MachineModel


@dataclass
class SchedulerConfig:
    """Knobs controlling speculation policy."""

    speculate: bool = True
    #: MAY-alias pairs with a profiled alias rate above this are treated as
    #: unbreakable (speculating on them would cause rollback storms).
    alias_rate_threshold: float = 0.25
    #: allow speculative reordering of stores relative to stores
    allow_store_reorder: bool = True


class AllocatorHook:
    """Interface the SMARQ allocator implements; defaults are inert.

    A scheduler without a hook performs plain (possibly speculative)
    list scheduling with no alias register management — used for the
    no-alias-hardware baseline (non-speculative) and for tests.
    """

    def speculation_allowed(self, inst: Instruction) -> bool:
        """May ``inst`` be scheduled while breakable predecessors remain
        unscheduled? The allocator answers False when alias registers are
        about to overflow."""
        return True

    def on_scheduled(
        self, inst: Instruction, cycle: int
    ) -> Tuple[List[Instruction], List[Instruction]]:
        """Called after every instruction is placed. Returns
        ``(before, after)`` pseudo-op lists to splice around ``inst`` in the
        linear order."""
        return ([], [])

    def on_finish(self, linear: List[Instruction]) -> None:
        """Called once with the final linear order (operand fixups)."""


@dataclass
class ScheduleResult:
    """Outcome of scheduling one superblock."""

    linear: List[Instruction]
    cycle_of: Dict[int, int]
    length_cycles: int
    speculated_pairs: int = 0
    mode_switches: int = 0

    def position(self) -> Dict[int, int]:
        """uid -> index in the linear order."""
        return {inst.uid: idx for idx, inst in enumerate(self.linear)}


@dataclass(frozen=True)
class SchedulePrep:
    """Precomputed readiness and priority tables for one schedule.

    Everything here is a pure function of the DDG structure, the
    scheduler policy, and the alias profile (hints + bans) — computed by
    :meth:`ListScheduler.prepare` and *position*-indexed (not uid-indexed)
    so the translation cache can reuse one prep across blocks with
    identical content. ``succ_adj[i]`` holds ``(dst_position, latency,
    honoured)`` per outgoing edge; ``honoured`` is the per-edge constant
    the readiness loop tests instead of re-deriving the speculation rules.
    """

    hard_left: Tuple[int, ...]
    spec_left: Tuple[int, ...]
    succ_adj: Tuple[Tuple[Tuple[int, int, bool], ...], ...]
    height: Tuple[int, ...]


class ListScheduler:
    """List scheduling over a :class:`DataDependenceGraph`."""

    def __init__(
        self,
        machine: MachineModel,
        config: Optional[SchedulerConfig] = None,
        hook: Optional[AllocatorHook] = None,
        tracer=None,
    ) -> None:
        from repro.engine.instrumentation import NULL_TRACER

        self.machine = machine
        self.config = config or SchedulerConfig()
        self.hook = hook or AllocatorHook()
        self.tracer = tracer if tracer is not None else NULL_TRACER

    # ------------------------------------------------------------------
    def prepare(
        self, ddg: DataDependenceGraph, alias_analysis=None
    ) -> SchedulePrep:
        """Build the position-indexed readiness/priority tables.

        Split out of :meth:`schedule` so the optimization pipeline can
        memoize the result: the tables depend only on DDG structure,
        policy, and profile state, never on the allocator hook.
        """
        instructions = list(ddg.block)
        n = len(instructions)
        pos = {inst.uid: i for i, inst in enumerate(instructions)}
        speculating = self.config.speculate

        def edge_honoured(edge) -> bool:
            """Is this edge a hard ordering requirement?

            Every input (the speculation mode, the store-reorder policy,
            the alias analysis) is fixed for the duration of one schedule,
            so the answer is a per-edge constant and is evaluated exactly
            once here — the readiness loop then tests a precomputed bool
            instead of re-deriving this chain per instruction per cycle.
            """
            if edge.kind is not EdgeKind.MEMORY:
                return True
            if not edge.speculative_breakable:
                return True
            if not speculating:
                return True
            if not self.config.allow_store_reorder and (
                edge.src.is_store and edge.dst.is_store
            ):
                return True
            if alias_analysis is not None:
                if alias_analysis.speculation_banned(
                    edge.src
                ) or alias_analysis.speculation_banned(edge.dst):
                    return True
                rate = alias_analysis.alias_rate(edge.src, edge.dst)
                if rate > self.config.alias_rate_threshold:
                    return True
            return False

        hard = [0] * n
        spec = [0] * n
        succ: List[List[Tuple[int, int, bool]]] = [[] for _ in range(n)]
        for di, inst in enumerate(instructions):
            for edge in ddg.iter_predecessors(inst):
                honoured = edge_honoured(edge)
                if honoured:
                    hard[di] += 1
                else:
                    spec[di] += 1
                succ[pos[edge.src.uid]].append((di, edge.latency, honoured))

        # Priority: latency-weighted height over always-honoured edges,
        # computed with speculation on (optimistic heights pull loads up).
        # Edges always point forward in program order, so one reverse pass
        # over the adjacency just built resolves every height.
        height = [0] * n
        for i in range(n - 1, -1, -1):
            best = 0
            for dst_pos, latency, honoured in succ[i]:
                if honoured:
                    candidate = latency + height[dst_pos]
                    if candidate > best:
                        best = candidate
            height[i] = best

        return SchedulePrep(
            hard_left=tuple(hard),
            spec_left=tuple(spec),
            succ_adj=tuple(tuple(entries) for entries in succ),
            height=tuple(height),
        )

    # ------------------------------------------------------------------
    def schedule(
        self,
        ddg: DataDependenceGraph,
        alias_analysis=None,
        prep: Optional[SchedulePrep] = None,
    ) -> ScheduleResult:
        instructions = list(ddg.block)
        n = len(instructions)
        program_pos = {inst.uid: i for i, inst in enumerate(instructions)}
        by_uid = {inst.uid: inst for inst in instructions}
        if prep is None:
            prep = self.prepare(ddg, alias_analysis)

        # Readiness is maintained incrementally instead of re-derived by
        # walking predecessor lists every cycle: per uid we keep the count
        # of honoured/breakable predecessor edges whose source is still
        # unscheduled, plus a running earliest-issue cycle updated when a
        # source is placed. The per-candidate test is then O(1), and the
        # functional unit and latency are resolved once per instruction
        # (no enum hashing per cycle). The tables come position-indexed
        # from ``prep`` (possibly memoized) and are re-keyed by uid here
        # because this block's uids are private to it.
        uids = [inst.uid for inst in instructions]
        hard_left: Dict[int, int] = dict(zip(uids, prep.hard_left))
        spec_left: Dict[int, int] = dict(zip(uids, prep.spec_left))
        earliest_at: Dict[int, int] = dict.fromkeys(uids, 0)
        succ_adj: Dict[int, List[Tuple[int, int, bool]]] = {
            uids[i]: [
                (uids[dst_pos], latency, honoured)
                for dst_pos, latency, honoured in prep.succ_adj[i]
            ]
            for i in range(n)
        }
        height: Dict[int, int] = dict(zip(uids, prep.height))
        op_table = self.machine.op_table
        unit_lat = {inst.uid: op_table[inst.opcode] for inst in instructions}

        track_alloc = self.tracer.active
        alloc_seconds = 0.0

        scheduled: Dict[int, int] = {}  # uid -> cycle
        linear: List[Instruction] = []
        speculated_pairs = 0
        mode_switches = 0

        cycle = 0
        remaining = set(inst.uid for inst in instructions)

        def ready_info(uid: int) -> Tuple[bool, int, bool]:
            """(deps_satisfied, earliest_cycle, is_speculative_now)."""
            if hard_left[uid]:
                return (False, 0, False)
            return (True, earliest_at[uid], spec_left[uid] > 0)

        safety_limit = 50 * (n + 1) + 10000
        iterations = 0
        # Per-cycle resource state persists until the cycle advances.
        slots_used: Dict[object, int] = {}
        issued = 0
        issue_width = self.machine.issue_width
        slots_for = self.machine.slots_for
        while remaining:
            iterations += 1
            if iterations > safety_limit:
                raise RuntimeError("scheduler failed to converge (cycle in DDG?)")

            # Collect instructions issuable this cycle.
            candidates: List[Tuple[int, int, Instruction, bool]] = []
            for uid in remaining:
                if hard_left[uid] or earliest_at[uid] > cycle:
                    continue
                speculative = spec_left[uid] > 0
                if speculative and not self.hook.speculation_allowed(
                    by_uid[uid]
                ):
                    continue
                candidates.append(
                    (-height[uid], program_pos[uid], by_uid[uid], speculative)
                )
            if not candidates:
                cycle += 1
                slots_used = {}
                issued = 0
                continue
            candidates.sort(key=lambda c: (c[0], c[1]))

            # Fill what remains of this cycle's slots.
            issued_any = False
            for _, _, inst, speculative in candidates:
                if issued >= issue_width:
                    break
                unit, _latency = unit_lat[inst.uid]
                if slots_used.get(unit, 0) >= slots_for(unit):
                    continue
                # Re-verify: an issue earlier in this pass may have changed
                # speculation permission (allocator register pressure).
                if speculative and not self.hook.speculation_allowed(inst):
                    continue
                ok, earliest, speculative_now = ready_info(inst.uid)
                if not ok or earliest > cycle:
                    continue
                slots_used[unit] = slots_used.get(unit, 0) + 1
                issued += 1
                issued_any = True
                scheduled[inst.uid] = cycle
                remaining.discard(inst.uid)
                for dst_uid, latency, honoured in succ_adj[inst.uid]:
                    if honoured:
                        hard_left[dst_uid] -= 1
                        available = cycle + latency
                        if available > earliest_at[dst_uid]:
                            earliest_at[dst_uid] = available
                    else:
                        spec_left[dst_uid] -= 1
                if speculative_now and inst.is_mem:
                    speculated_pairs += 1
                if track_alloc:
                    t0 = perf_counter()
                    before, after = self.hook.on_scheduled(inst, cycle)
                    alloc_seconds += perf_counter() - t0
                else:
                    before, after = self.hook.on_scheduled(inst, cycle)
                linear.extend(before)
                linear.append(inst)
                linear.extend(after)
            if not issued_any:
                cycle += 1
                slots_used = {}
                issued = 0

        length = 1 + max(scheduled.values(), default=0)
        if track_alloc:
            t0 = perf_counter()
            self.hook.on_finish(linear)
            alloc_seconds += perf_counter() - t0
            self.tracer.add_time("optimize.alloc", alloc_seconds)
        else:
            self.hook.on_finish(linear)
        cycle_of = dict(scheduled)
        # Pseudo-ops ride along in the issuing instruction's cycle.
        for idx, inst in enumerate(linear):
            if inst.uid not in cycle_of:
                neighbor = next(
                    (linear[j].uid for j in range(idx + 1, len(linear))
                     if linear[j].uid in cycle_of),
                    None,
                )
                if neighbor is None:
                    neighbor_cycle = length - 1
                else:
                    neighbor_cycle = cycle_of[neighbor]
                cycle_of[inst.uid] = neighbor_cycle
        return ScheduleResult(
            linear=linear,
            cycle_of=cycle_of,
            length_cycles=length,
            speculated_pairs=speculated_pairs,
            mode_switches=mode_switches,
        )
