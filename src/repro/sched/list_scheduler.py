"""Cycle-driven list scheduler with speculative memory reordering.

The scheduler fills time slots in increasing cycle order (the property the
paper's Figure 13 relies on: once an instruction is scheduled, everything
scheduled later occupies the same or a later slot). It runs in two modes:

* **speculation mode** — breakable memory edges (MAY-alias dependences) are
  ignored for readiness, so loads can hoist above potentially aliasing
  stores and stores can reorder among themselves. Every time that actually
  happens, the attached :class:`AllocatorHook` (the SMARQ allocator) records
  the check/anti constraints and allocates alias registers.
* **non-speculation mode** — all memory edges are honoured; no new
  speculation is created, letting pending alias registers drain (overflow
  prevention, paper Section 5.3).

The scheduler consults the hook before making an instruction speculatively
ready, and after scheduling each instruction; the hook may splice pseudo
operations (``AMOV`` before, ``ROTATE`` after) into the linear output.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.ir.instruction import Instruction
from repro.sched.ddg import DataDependenceGraph, EdgeKind
from repro.sched.machine import MachineModel


@dataclass
class SchedulerConfig:
    """Knobs controlling speculation policy."""

    speculate: bool = True
    #: MAY-alias pairs with a profiled alias rate above this are treated as
    #: unbreakable (speculating on them would cause rollback storms).
    alias_rate_threshold: float = 0.25
    #: allow speculative reordering of stores relative to stores
    allow_store_reorder: bool = True


class AllocatorHook:
    """Interface the SMARQ allocator implements; defaults are inert.

    A scheduler without a hook performs plain (possibly speculative)
    list scheduling with no alias register management — used for the
    no-alias-hardware baseline (non-speculative) and for tests.
    """

    def speculation_allowed(self, inst: Instruction) -> bool:
        """May ``inst`` be scheduled while breakable predecessors remain
        unscheduled? The allocator answers False when alias registers are
        about to overflow."""
        return True

    def on_scheduled(
        self, inst: Instruction, cycle: int
    ) -> Tuple[List[Instruction], List[Instruction]]:
        """Called after every instruction is placed. Returns
        ``(before, after)`` pseudo-op lists to splice around ``inst`` in the
        linear order."""
        return ([], [])

    def on_finish(self, linear: List[Instruction]) -> None:
        """Called once with the final linear order (operand fixups)."""


@dataclass
class ScheduleResult:
    """Outcome of scheduling one superblock."""

    linear: List[Instruction]
    cycle_of: Dict[int, int]
    length_cycles: int
    speculated_pairs: int = 0
    mode_switches: int = 0

    def position(self) -> Dict[int, int]:
        """uid -> index in the linear order."""
        return {inst.uid: idx for idx, inst in enumerate(self.linear)}


class ListScheduler:
    """List scheduling over a :class:`DataDependenceGraph`."""

    def __init__(
        self,
        machine: MachineModel,
        config: Optional[SchedulerConfig] = None,
        hook: Optional[AllocatorHook] = None,
    ) -> None:
        self.machine = machine
        self.config = config or SchedulerConfig()
        self.hook = hook or AllocatorHook()

    # ------------------------------------------------------------------
    def schedule(self, ddg: DataDependenceGraph, alias_analysis=None) -> ScheduleResult:
        instructions = list(ddg.block)
        n = len(instructions)
        program_pos = {inst.uid: i for i, inst in enumerate(instructions)}
        by_uid = {inst.uid: inst for inst in instructions}

        def edge_honoured(edge, speculating: bool) -> bool:
            """Is this edge a hard ordering requirement right now?"""
            if edge.kind is not EdgeKind.MEMORY:
                return True
            if not edge.speculative_breakable:
                return True
            if not speculating:
                return True
            if not self.config.allow_store_reorder and (
                edge.src.is_store and edge.dst.is_store
            ):
                return True
            if alias_analysis is not None:
                if alias_analysis.speculation_banned(
                    edge.src
                ) or alias_analysis.speculation_banned(edge.dst):
                    return True
                rate = alias_analysis.alias_rate(edge.src, edge.dst)
                if rate > self.config.alias_rate_threshold:
                    return True
            return False

        # Priority: latency-weighted height over always-honoured edges,
        # computed with speculation on (optimistic heights pull loads up).
        height: Dict[int, int] = {}
        for inst in reversed(instructions):
            best = 0
            for edge in ddg.successors(inst):
                if edge_honoured(edge, speculating=self.config.speculate):
                    best = max(
                        best, edge.latency + height.get(edge.dst.uid, 0)
                    )
            height[inst.uid] = best

        scheduled: Dict[int, int] = {}  # uid -> cycle
        finish: Dict[int, int] = {}  # uid -> cycle operand becomes available
        linear: List[Instruction] = []
        speculated_pairs = 0
        mode_switches = 0
        speculating = self.config.speculate

        cycle = 0
        remaining = set(inst.uid for inst in instructions)

        def ready_info(inst: Instruction) -> Tuple[bool, int, bool]:
            """(deps_satisfied, earliest_cycle, is_speculative_now)."""
            earliest = 0
            speculative = False
            for edge in ddg.predecessors(inst):
                honoured = edge_honoured(edge, speculating)
                if edge.src.uid in scheduled:
                    if honoured:
                        earliest = max(
                            earliest, scheduled[edge.src.uid] + edge.latency
                        )
                    continue
                if honoured:
                    return (False, 0, False)
                speculative = True
            return (True, earliest, speculative)

        safety_limit = 50 * (n + 1) + 10000
        iterations = 0
        # Per-cycle resource state persists until the cycle advances.
        slots_used: Dict[object, int] = {}
        issued = 0
        while remaining:
            iterations += 1
            if iterations > safety_limit:
                raise RuntimeError("scheduler failed to converge (cycle in DDG?)")

            # Collect instructions issuable this cycle.
            candidates: List[Tuple[int, int, Instruction, bool]] = []
            for uid in remaining:
                inst = by_uid[uid]
                ok, earliest, speculative = ready_info(inst)
                if not ok or earliest > cycle:
                    continue
                if speculative and not self.hook.speculation_allowed(inst):
                    continue
                candidates.append(
                    (-height[uid], program_pos[uid], inst, speculative)
                )
            if not candidates:
                cycle += 1
                slots_used = {}
                issued = 0
                continue
            candidates.sort(key=lambda c: (c[0], c[1]))

            # Fill what remains of this cycle's slots.
            issued_any = False
            for _, _, inst, speculative in candidates:
                if issued >= self.machine.issue_width:
                    break
                unit = self.machine.unit_of(inst)
                if slots_used.get(unit, 0) >= self.machine.slots_for(unit):
                    continue
                # Re-verify: an issue earlier in this pass may have changed
                # speculation permission (allocator register pressure).
                if speculative and not self.hook.speculation_allowed(inst):
                    continue
                ok, earliest, speculative_now = ready_info(inst)
                if not ok or earliest > cycle:
                    continue
                slots_used[unit] = slots_used.get(unit, 0) + 1
                issued += 1
                issued_any = True
                scheduled[inst.uid] = cycle
                finish[inst.uid] = cycle + self.machine.latency_of(inst)
                remaining.discard(inst.uid)
                if speculative_now and inst.is_mem:
                    speculated_pairs += 1
                before, after = self.hook.on_scheduled(inst, cycle)
                linear.extend(before)
                linear.append(inst)
                linear.extend(after)
            if not issued_any:
                cycle += 1
                slots_used = {}
                issued = 0

        length = 1 + max(scheduled.values(), default=0)
        self.hook.on_finish(linear)
        cycle_of = dict(scheduled)
        # Pseudo-ops ride along in the issuing instruction's cycle.
        for idx, inst in enumerate(linear):
            if inst.uid not in cycle_of:
                neighbor = next(
                    (linear[j].uid for j in range(idx + 1, len(linear))
                     if linear[j].uid in cycle_of),
                    None,
                )
                if neighbor is None:
                    neighbor_cycle = length - 1
                else:
                    neighbor_cycle = cycle_of[neighbor]
                cycle_of[inst.uid] = neighbor_cycle
        return ScheduleResult(
            linear=linear,
            cycle_of=cycle_of,
            length_cycles=length,
            speculated_pairs=speculated_pairs,
            mode_switches=mode_switches,
        )
