"""Figure 14: memory operations per superblock, per benchmark.

The paper uses this to motivate scalable alias registers: ammp's
superblocks carry by far the most memory operations, which is why it is
the benchmark most hurt by a 16-register limit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.eval.report import render_table
from repro.eval.suite import SuiteRunner


@dataclass
class Fig14Result:
    #: benchmark -> average memory operations per formed superblock
    mem_ops: Dict[str, float] = field(default_factory=dict)
    #: benchmark -> average instructions per superblock
    instructions: Dict[str, float] = field(default_factory=dict)
    #: benchmark -> number of superblocks formed
    superblocks: Dict[str, int] = field(default_factory=dict)


def run_fig14(runner: SuiteRunner) -> Fig14Result:
    result = Fig14Result()
    for bench in runner.config.benchmarks:
        report = runner.report(bench, "smarq")
        snapshots = list(report.region_stats.values())
        if snapshots:
            result.mem_ops[bench] = sum(s.memory_ops for s in snapshots) / len(
                snapshots
            )
            result.instructions[bench] = sum(
                s.instructions for s in snapshots
            ) / len(snapshots)
        else:
            result.mem_ops[bench] = 0.0
            result.instructions[bench] = 0.0
        result.superblocks[bench] = len(snapshots)
    return result


def render_fig14(result: Fig14Result) -> str:
    rows = [
        [bench, result.mem_ops[bench], result.instructions[bench],
         result.superblocks[bench]]
        for bench in result.mem_ops
    ]
    return render_table(
        "Figure 14: Memory Operations per Superblock",
        ["benchmark", "mem ops/superblock", "insts/superblock", "superblocks"],
        rows,
        note="Paper shape: ammp has by far the largest superblocks.",
    )
