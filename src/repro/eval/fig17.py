"""Figure 17: alias register working set, normalized to memory-op count.

Four bars per benchmark, matching the paper:

1. memory operations per superblock (the program-order-all allocation's
   working set) — the 1.0 normalization base;
2. P-bit operations only (program-order allocation over setters);
3. SMARQ's working set (max offset + 1, thanks to constraint-order
   allocation plus rotation);
4. the live-range lower bound no allocation can beat.

Paper result: SMARQ ~26% of bar 1 (a 74% reduction), ~25% below bar 2,
and close to bar 4.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.eval.report import render_table
from repro.eval.suite import SuiteRunner


@dataclass
class Fig17Result:
    #: benchmark -> normalized bars (program_order_all == 1.0)
    pbit_only: Dict[str, float] = field(default_factory=dict)
    smarq: Dict[str, float] = field(default_factory=dict)
    lower_bound: Dict[str, float] = field(default_factory=dict)
    #: raw per-benchmark working sets (for the scaling question)
    raw_memops: Dict[str, float] = field(default_factory=dict)
    raw_smarq: Dict[str, float] = field(default_factory=dict)
    mean_reduction_vs_all: float = 0.0
    mean_reduction_vs_pbit: float = 0.0


def run_fig17(runner: SuiteRunner) -> Fig17Result:
    result = Fig17Result()
    reductions_all = []
    reductions_pbit = []
    for bench in runner.config.benchmarks:
        report = runner.report(bench, "smarq")
        snapshots = list(report.region_stats.values())
        mem = sum(s.memory_ops for s in snapshots)
        pbit = sum(s.p_bit_ops for s in snapshots)
        ws = sum(s.working_set for s in snapshots)
        lb = sum(s.working_set_lower_bound for s in snapshots)
        if mem == 0:
            continue
        result.pbit_only[bench] = pbit / mem
        result.smarq[bench] = ws / mem
        result.lower_bound[bench] = lb / mem
        result.raw_memops[bench] = mem / max(1, len(snapshots))
        result.raw_smarq[bench] = ws / max(1, len(snapshots))
        reductions_all.append(1.0 - ws / mem)
        if pbit:
            reductions_pbit.append(1.0 - ws / pbit)
    if reductions_all:
        result.mean_reduction_vs_all = sum(reductions_all) / len(reductions_all)
    if reductions_pbit:
        result.mean_reduction_vs_pbit = sum(reductions_pbit) / len(
            reductions_pbit
        )
    return result


def render_fig17(result: Fig17Result) -> str:
    rows = [
        [
            bench,
            1.0,
            result.pbit_only[bench],
            result.smarq[bench],
            result.lower_bound[bench],
        ]
        for bench in result.smarq
    ]
    note = (
        f"Mean SMARQ reduction vs program-order-all: "
        f"{result.mean_reduction_vs_all * 100:.0f}% (paper: 74%); vs "
        f"P-bit-only: {result.mean_reduction_vs_pbit * 100:.0f}% "
        f"(paper: 25%). SMARQ bar should sit near the lower bound."
    )
    return render_table(
        "Figure 17: Alias Register Working Set (normalized to mem ops)",
        ["benchmark", "prog-order all", "P-bit only", "SMARQ", "lower bound"],
        rows,
        note=note,
    )
