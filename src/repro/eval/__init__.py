"""Experiment harness: one module per paper table/figure.

Every experiment exposes a ``run_*`` function returning a plain dataclass
of results plus a ``render_*`` function producing the text table the
benchmarks print. ``repro.eval.suite`` owns the (scheme x benchmark)
sweep and caches reports so multiple figures can share one run.
"""

from repro.eval.suite import SuiteRunner, SuiteConfig
from repro.eval.summary import headline, run_all
from repro.eval.table1 import run_table1, render_table1
from repro.eval.fig14 import run_fig14, render_fig14
from repro.eval.fig15 import run_fig15, render_fig15
from repro.eval.fig16 import run_fig16, render_fig16
from repro.eval.fig17 import run_fig17, render_fig17
from repro.eval.fig18 import run_fig18, render_fig18
from repro.eval.fig19 import run_fig19, render_fig19
from repro.eval.report import render_table

__all__ = [
    "SuiteConfig",
    "SuiteRunner",
    "headline",
    "run_all",
    "render_fig14",
    "render_fig15",
    "render_fig16",
    "render_fig17",
    "render_fig18",
    "render_fig19",
    "render_table",
    "render_table1",
    "run_fig14",
    "run_fig15",
    "run_fig16",
    "run_fig17",
    "run_fig18",
    "run_fig19",
    "run_table1",
]
