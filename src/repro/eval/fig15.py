"""Figure 15: speedup of the alias-detection schemes over no-HW baseline.

Paper result: SMARQ +39% average, SMARQ16 +29% (a 10% gap, up to 30% on
ammp), Itanium-like +26% (a 13% gap, up to 47% on ammp). Absolute factors
differ on our substrate; the ordering and where the large gaps fall
(ammp) are the reproduction target.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.eval.report import render_table
from repro.eval.suite import SuiteRunner, geomean

SCHEMES = ("smarq", "smarq-cert", "smarq16", "itanium")


@dataclass
class Fig15Result:
    #: benchmark -> scheme -> speedup over "none"
    speedups: Dict[str, Dict[str, float]] = field(default_factory=dict)
    geomeans: Dict[str, float] = field(default_factory=dict)
    #: benchmark -> scheme -> alias exceptions observed
    exceptions: Dict[str, Dict[str, int]] = field(default_factory=dict)


def run_fig15(runner: SuiteRunner) -> Fig15Result:
    result = Fig15Result()
    for bench in runner.config.benchmarks:
        result.speedups[bench] = {}
        result.exceptions[bench] = {}
        for scheme in SCHEMES:
            result.speedups[bench][scheme] = runner.speedup(bench, scheme)
            result.exceptions[bench][scheme] = runner.report(
                bench, scheme
            ).alias_exceptions
    for scheme in SCHEMES:
        result.geomeans[scheme] = geomean(
            result.speedups[b][scheme] for b in result.speedups
        )
    return result


def render_fig15(result: Fig15Result) -> str:
    rows: List[List[object]] = []
    for bench, per_scheme in result.speedups.items():
        rows.append(
            [bench]
            + [per_scheme[s] for s in SCHEMES]
            + [result.exceptions[bench]["smarq"], result.exceptions[bench]["itanium"]]
        )
    rows.append(
        ["GEOMEAN"] + [result.geomeans[s] for s in SCHEMES] + ["", ""]
    )
    return render_table(
        "Figure 15: Speedup with Different Alias Detection (vs no alias HW)",
        [
            "benchmark",
            "SMARQ",
            "SMARQ-cert",
            "SMARQ16",
            "Itanium-like",
            "exc(smarq)",
            "exc(ita)",
        ],
        rows,
        note=(
            "Paper shapes: SMARQ > SMARQ16 > Itanium-like on average; the "
            "largest SMARQ16 and Itanium gaps fall on ammp. SMARQ-cert is "
            "our grounded extension: SMARQ plus the static alias "
            "certifier, the best-case bound when every provable check is "
            "dropped."
        ),
    )
