"""Table 1: qualitative comparison of the HW alias-detection schemes.

The paper's table lists three properties per scheme: scalability, false
positives, and store-store alias detectability. Instead of restating the
table, this experiment *demonstrates* each property by running directed
micro-programs against the executable hardware models:

* **scalability** — the bit-mask file rejects >15 registers
  (``AliasRegisterOverflow``); the ordered queue accepts 64+.
* **false positives** — a store that was never reordered against a live
  advanced load still faults on the ALAT; the ordered queue with P/C bits
  does not check it.
* **store-store** — two reordered aliasing stores are detected by the
  ordered queue and the bit-mask file, but invisible to the ALAT.
* **static certification** (our grounded extension, the ``smarq-cert``
  scheme) — a provably disjoint load/store pair is certified by the
  prover, revalidated by the independent checker, and needs *no*
  runtime check at all; the pure-hardware schemes always pay one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.analysis.certify import certify_region, check_certificate
from repro.analysis.dependence import Dependence
from repro.eval.report import render_table
from repro.hw.efficeon import EFFICEON_MAX_REGISTERS, BitmaskAliasFile
from repro.hw.exceptions import AliasException, AliasRegisterOverflow
from repro.hw.itanium import AlatModel
from repro.hw.queue_model import AliasRegisterQueue
from repro.hw.ranges import AccessRange
from repro.ir.instruction import Instruction, Opcode, load, store
from repro.ir.superblock import Superblock


@dataclass
class Table1Result:
    #: scheme -> {"scalable": bool, "false_positive": bool, "store_store": bool}
    properties: Dict[str, Dict[str, bool]]


def _scalable_ordered() -> bool:
    queue = AliasRegisterQueue(64)
    for i in range(64):
        queue.set(i, AccessRange(0x1000 + 0x10 * i, 8, is_load=True))
    return True


def _scalable_bitmask() -> bool:
    try:
        BitmaskAliasFile(64)
    except AliasRegisterOverflow:
        return False
    return True


def _false_positive_alat() -> bool:
    """Figure 3's shape: M1 (advanced load) aliases M2 (store), but M2 was
    never reordered against M1 — a precise scheme performs no check."""
    alat = AlatModel()
    alat.advanced_load(1, AccessRange(0x2000, 8, is_load=True))
    try:
        alat.store_check(
            AccessRange(0x2000, 8), checker_mem_index=2, required_targets=set()
        )
    except AliasException as exc:
        return exc.false_positive
    return False


def _false_positive_ordered() -> bool:
    """Same shape on the queue: M2 carries no C bit, so no check happens."""
    queue = AliasRegisterQueue(64)
    queue.set(0, AccessRange(0x2000, 8, is_load=True), setter_mem_index=1)
    # M2 has no C bit: the hardware performs no check at all.
    return False


def _store_store_ordered() -> bool:
    queue = AliasRegisterQueue(64)
    queue.set(0, AccessRange(0x3000, 8, is_load=False), setter_mem_index=3)
    try:
        queue.check(0, AccessRange(0x3000, 8, is_load=False), 2)
    except AliasException:
        return True
    return False


def _store_store_bitmask() -> bool:
    hw = BitmaskAliasFile(EFFICEON_MAX_REGISTERS)
    hw.set(0, AccessRange(0x3000, 8, is_load=False), setter_mem_index=3)
    try:
        hw.check(0b1, AccessRange(0x3000, 8, is_load=False), 2)
    except AliasException:
        return True
    return False


def _store_store_alat() -> bool:
    """Stores do not allocate ALAT entries: reordered aliasing stores are
    invisible."""
    alat = AlatModel()
    # the "hoisted" store cannot insert; the later store checks nothing
    try:
        alat.store_check(AccessRange(0x3000, 8), checker_mem_index=2)
    except AliasException:
        return True
    return False


def _static_certify() -> bool:
    """A load and a store through bases a constant 64 bytes apart: the
    linear prover certifies disjointness, the independent checker accepts
    the certificate, and the pair needs no runtime check at all."""
    ld = load(20, 8, disp=0, size=8)
    st = store(9, 21, disp=0, size=8)
    block = Superblock(
        entry_pc=0x100,
        instructions=[
            Instruction(Opcode.ADD, dest=9, srcs=(8,), imm=64),
            ld,
            st,
        ],
    )
    deps = [Dependence(ld, st)]
    cert = certify_region(block, deps)
    if cert.num_certified != 1:
        return False
    return not check_certificate(cert, block, deps)


def run_table1() -> Table1Result:
    return Table1Result(
        properties={
            "efficeon-bitmask": {
                "scalable": _scalable_bitmask(),
                "false_positive": False,  # mask names exactly the targets
                "store_store": _store_store_bitmask(),
                "static_certify": False,  # bit masks only see runtime addresses
            },
            "itanium-alat": {
                "scalable": True,
                "false_positive": _false_positive_alat(),
                "store_store": _store_store_alat(),
                "static_certify": False,  # the ALAT only sees runtime addresses
            },
            "order-based": {
                "scalable": _scalable_ordered(),
                "false_positive": _false_positive_ordered(),
                "store_store": _store_store_ordered(),
                "static_certify": False,  # plain SMARQ checks every pair
            },
            "order-based+cert": {
                "scalable": _scalable_ordered(),
                "false_positive": _false_positive_ordered(),
                "store_store": _store_store_ordered(),
                "static_certify": _static_certify(),
            },
        }
    )


def render_table1(result: Table1Result) -> str:
    rows: List[List[object]] = []
    for scheme, props in result.properties.items():
        rows.append(
            [
                scheme,
                "Good" if props["scalable"] else "Poor",
                "Yes" if props["false_positive"] else "No",
                "Yes" if props["store_store"] else "No",
                "Yes" if props["static_certify"] else "No",
            ]
        )
    return render_table(
        "Table 1: Comparison between HW Alias Detection Schemes (demonstrated)",
        [
            "scheme",
            "scalability",
            "false positives",
            "detects store-store",
            "static certify",
        ],
        rows,
        note=(
            "Paper: Efficeon = poor scalability / no FP / store-store yes; "
            "Itanium = scalable / FP yes / store-store no; order-based = "
            "scalable / no FP / store-store yes. The static-certify column "
            "is our grounded extension (smarq-cert): a software proof "
            "checked independently of the prover removes the runtime check "
            "entirely."
        ),
    )
