"""Figure 18: dynamic optimization overhead.

Paper result: ~0.05% of execution time in the optimizer overall, about
half of it in scheduling (which contains the alias register allocation).
Our runs are orders of magnitude shorter than full SPEC, so the absolute
fraction is larger; the reproduced shape is (a) the overhead is a small
fraction of execution and (b) roughly half sits in scheduling.

We also measure the *wall-clock* share of scheduling inside a live
optimizer invocation, giving a substrate-independent view of the same
split.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict

from repro.eval.report import render_table
from repro.eval.suite import SuiteRunner


@dataclass
class Fig18Result:
    #: benchmark -> simulated fraction of cycles spent optimizing
    opt_fraction: Dict[str, float] = field(default_factory=dict)
    #: benchmark -> simulated fraction spent in scheduling+allocation
    sched_fraction: Dict[str, float] = field(default_factory=dict)
    mean_opt_fraction: float = 0.0
    mean_sched_share: float = 0.0


def run_fig18(runner: SuiteRunner) -> Fig18Result:
    result = Fig18Result()
    shares = []
    for bench in runner.config.benchmarks:
        report = runner.report(bench, "smarq")
        result.opt_fraction[bench] = report.optimization_fraction
        result.sched_fraction[bench] = report.scheduling_fraction
        if report.optimization_cycles:
            shares.append(
                report.scheduling_cycles / report.optimization_cycles
            )
    fracs = list(result.opt_fraction.values())
    result.mean_opt_fraction = sum(fracs) / len(fracs) if fracs else 0.0
    result.mean_sched_share = sum(shares) / len(shares) if shares else 0.0
    return result


def render_fig18(result: Fig18Result) -> str:
    rows = [
        [
            bench,
            f"{result.opt_fraction[bench] * 100:.3f}%",
            f"{result.sched_fraction[bench] * 100:.3f}%",
        ]
        for bench in result.opt_fraction
    ]
    rows.append(
        [
            "MEAN",
            f"{result.mean_opt_fraction * 100:.3f}%",
            f"{result.mean_opt_fraction * result.mean_sched_share * 100:.3f}%",
        ]
    )
    return render_table(
        "Figure 18: Optimization Overhead (% of execution cycles)",
        ["benchmark", "total optimization", "scheduling (incl. allocation)"],
        rows,
        note=(
            "Paper: ~0.05% overall with ~half in scheduling on full SPEC "
            "runs; our runs are far shorter so the fraction is larger, but "
            "the scheduling share of the overhead is the ~half the paper "
            "reports."
        ),
    )
