"""Plain-text table rendering shared by the experiment modules."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def render_table(
    title: str,
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    note: str = "",
) -> str:
    """Fixed-width text table with a title line and optional footnote."""
    str_rows: List[List[str]] = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    out = [title, "=" * len(title), line(list(headers)), line(["-" * w for w in widths])]
    out.extend(line(row) for row in str_rows)
    if note:
        out.append("")
        out.append(note)
    return "\n".join(out)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)
