"""Figure 16: performance impact of disabling store reordering.

Paper result: disabling speculative store-store reordering costs 2.6% on
average and up to 13% on mesa; ammp is slightly *helped* because its
reordered stores occasionally alias at runtime and roll back.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from functools import partial

from repro.eval.report import render_table
from repro.eval.suite import SuiteRunner, geomean
from repro.opt.pipeline import OptimizerConfig
from repro.sim.schemes import Scheme, SmarqAdapter, make_scheme

NO_STORE_REORDER_KEY = "smarq-nostreorder"


def register_variant(runner: SuiteRunner) -> None:
    """Register the no-store-reorder SMARQ variant on ``runner``.

    Public so the CLI can register it ahead of a batched prefetch; the
    partial adapter factory keeps the scheme picklable for the parallel
    executor.
    """
    base = make_scheme("smarq")
    config = OptimizerConfig(speculate=True, allow_store_reorder=False)
    runner.register_variant(
        NO_STORE_REORDER_KEY,
        Scheme(
            name=NO_STORE_REORDER_KEY,
            machine=base.machine,
            optimizer_config=config,
            adapter_factory=partial(
                SmarqAdapter, base.machine.alias_registers
            ),
        ),
    )


#: backwards-compatible alias (pre-engine name)
_register_variant = register_variant


@dataclass
class Fig16Result:
    #: benchmark -> speedup with full SMARQ
    with_reorder: Dict[str, float] = field(default_factory=dict)
    #: benchmark -> speedup with store reordering disabled
    without_reorder: Dict[str, float] = field(default_factory=dict)
    #: benchmark -> relative impact (with / without - 1)
    impact: Dict[str, float] = field(default_factory=dict)
    mean_impact: float = 0.0


def run_fig16(runner: SuiteRunner) -> Fig16Result:
    register_variant(runner)
    result = Fig16Result()
    for bench in runner.config.benchmarks:
        full = runner.speedup(bench, "smarq")
        no_st = runner.speedup(bench, NO_STORE_REORDER_KEY)
        result.with_reorder[bench] = full
        result.without_reorder[bench] = no_st
        result.impact[bench] = (full / no_st - 1.0) if no_st else 0.0
    impacts = list(result.impact.values())
    result.mean_impact = sum(impacts) / len(impacts) if impacts else 0.0
    return result


def render_fig16(result: Fig16Result) -> str:
    rows = [
        [
            bench,
            result.with_reorder[bench],
            result.without_reorder[bench],
            f"{result.impact[bench] * 100:+.1f}%",
        ]
        for bench in result.with_reorder
    ]
    rows.append(["MEAN", "", "", f"{result.mean_impact * 100:+.1f}%"])
    return render_table(
        "Figure 16: Impact of Store Reordering",
        ["benchmark", "speedup (reorder)", "speedup (no st-reorder)", "impact"],
        rows,
        note=(
            "Paper shapes: small positive mean impact, largest on mesa; "
            "ammp can go slightly negative (reordered stores alias at "
            "runtime and roll back)."
        ),
    )
