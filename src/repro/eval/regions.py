"""Region extraction helper for region-level experiments and ablations.

Runs a workload under the interpreter just long enough for its hot loop to
cross the profiling threshold, then forms the superblocks — giving
ablation benchmarks realistic regions without a full DBT run.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.frontend.interpreter import Interpreter
from repro.frontend.profiler import HotnessProfiler, ProfilerConfig
from repro.frontend.program import GuestProgram
from repro.frontend.region import RegionFormer
from repro.ir.superblock import Superblock
from repro.sim.memory import Memory
from repro.workloads import make_benchmark


def form_hot_regions(
    benchmark: str,
    scale: float = 0.02,
    hot_threshold: int = 15,
    max_steps: int = 500_000,
) -> Tuple[GuestProgram, List[Superblock]]:
    """The benchmark's program plus its hot superblocks."""
    program = make_benchmark(benchmark, scale=scale)
    profiler = HotnessProfiler(
        program, ProfilerConfig(hot_threshold=hot_threshold)
    )
    memory = Memory(program.memory_size() + 4096)
    interpreter = Interpreter(program, memory)
    interpreter.trace_hook = profiler.observe
    try:
        interpreter.run(max_steps=max_steps)
    except Exception:  # InterpreterLimit is fine: profile is warm enough
        pass
    former = RegionFormer(program, profiler)
    regions = [
        former.form(head)
        for head in sorted(profiler.hot_heads())
    ]
    return program, [r for r in regions if r.memory_ops()]
