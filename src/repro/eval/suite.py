"""Shared (scheme x benchmark) sweep with report caching.

Figures 14-19 all consume the same per-run :class:`DbtReport` data; the
runner executes each (benchmark, scheme-key) pair once and caches the
report, so regenerating every figure costs one suite sweep.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.frontend.profiler import ProfilerConfig
from repro.sim.dbt import DbtReport, DbtSystem
from repro.sim.schemes import Scheme, make_scheme
from repro.workloads import SPECFP_BENCHMARKS, make_benchmark


@dataclass
class SuiteConfig:
    benchmarks: List[str] = field(
        default_factory=lambda: list(SPECFP_BENCHMARKS)
    )
    #: iteration scale for every workload (1.0 = calibrated default)
    scale: float = 0.25
    hot_threshold: int = 20


class SuiteRunner:
    """Runs and caches DBT reports keyed by (benchmark, scheme_key)."""

    def __init__(self, config: Optional[SuiteConfig] = None) -> None:
        self.config = config or SuiteConfig()
        self._cache: Dict[Tuple[str, str], DbtReport] = {}
        #: scheme variants beyond the four standard names, registered by
        #: experiments (e.g. smarq with store reordering disabled)
        self._variants: Dict[str, Scheme] = {}

    def register_variant(self, key: str, scheme: Scheme) -> None:
        self._variants[key] = scheme

    def report(self, benchmark: str, scheme_key: str) -> DbtReport:
        """The cached report for one (benchmark, scheme) cell."""
        cache_key = (benchmark, scheme_key)
        if cache_key not in self._cache:
            program = make_benchmark(benchmark, scale=self.config.scale)
            scheme = self._variants.get(scheme_key)
            system = DbtSystem(
                program,
                scheme if scheme is not None else scheme_key,
                profiler_config=ProfilerConfig(
                    hot_threshold=self.config.hot_threshold
                ),
            )
            self._cache[cache_key] = system.run()
        return self._cache[cache_key]

    def speedup(self, benchmark: str, scheme_key: str) -> float:
        """Speedup of ``scheme_key`` over the no-alias-hardware baseline."""
        baseline = self.report(benchmark, "none").total_cycles
        cycles = self.report(benchmark, scheme_key).total_cycles
        return baseline / cycles if cycles else 0.0

    def sweep(
        self, scheme_keys: Iterable[str]
    ) -> Dict[str, Dict[str, DbtReport]]:
        """Reports for every benchmark under every given scheme."""
        out: Dict[str, Dict[str, DbtReport]] = {}
        for bench in self.config.benchmarks:
            out[bench] = {key: self.report(bench, key) for key in scheme_keys}
        return out


def geomean(values: Iterable[float]) -> float:
    values = [v for v in values if v > 0]
    if not values:
        return 0.0
    product = 1.0
    for v in values:
        product *= v
    return product ** (1.0 / len(values))
