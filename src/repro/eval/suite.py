"""Shared (scheme x benchmark) sweep riding on the execution engine.

Figures 14-19 all consume the same per-run :class:`DbtReport` data; the
runner turns each (benchmark, scheme-key) cell into an engine
:class:`~repro.engine.jobs.JobSpec` and memoizes the resulting report, so
regenerating every figure costs one suite sweep. The engine underneath
decides *how* the cells run: serially, fanned across a process pool, or
served from the persistent report cache (see :mod:`repro.engine`).

:meth:`SuiteRunner.prefetch` submits every missing cell as one batch — the
hook parallel executors need to actually overlap work.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.engine.core import ExecutionEngine
from repro.engine.jobs import JobSpec
from repro.sim.dbt import DbtReport
from repro.sim.schemes import Scheme
from repro.workloads import SPECFP_BENCHMARKS


@dataclass
class SuiteConfig:
    benchmarks: List[str] = field(
        default_factory=lambda: list(SPECFP_BENCHMARKS)
    )
    #: iteration scale for every workload (1.0 = calibrated default)
    scale: float = 0.25
    hot_threshold: int = 20


class SuiteRunner:
    """Runs and caches DBT reports keyed by (benchmark, scheme_key).

    ``engine`` defaults to a serial, non-persistent
    :class:`~repro.engine.core.ExecutionEngine`; pass a configured one
    for parallel execution, persistent caching, or instrumentation.
    """

    def __init__(
        self,
        config: Optional[SuiteConfig] = None,
        engine: Optional[ExecutionEngine] = None,
    ) -> None:
        self.config = config or SuiteConfig()
        self.engine = engine or ExecutionEngine()
        self._cache: Dict[Tuple[str, str], DbtReport] = {}
        #: scheme variants beyond the standard names, registered by
        #: experiments (e.g. smarq with store reordering disabled)
        self._variants: Dict[str, Scheme] = {}

    def register_variant(self, key: str, scheme: Scheme) -> None:
        """Register (or replace) the scheme behind ``key``.

        Re-registering a key with a *different* scheme invalidates any
        memoized reports for it: cached results for the old variant must
        never be served for the new one. Equality is judged on the
        scheme's canonical configuration, so re-registering an identical
        variant (as ``run_fig16`` does on every call) keeps warm reports.
        (The engine's persistent cache needs no flush — variant
        parameters are part of the job fingerprint.)
        """
        from repro.engine.jobs import canonical_config

        old = self._variants.get(key)
        if old is not scheme and (
            old is None or canonical_config(old) != canonical_config(scheme)
        ):
            for cell in [c for c in self._cache if c[1] == key]:
                del self._cache[cell]
        self._variants[key] = scheme

    # ------------------------------------------------------------------
    def _spec(self, benchmark: str, scheme_key: str) -> JobSpec:
        spec = JobSpec(
            benchmark=benchmark,
            scheme_key=scheme_key,
            scale=self.config.scale,
            hot_threshold=self.config.hot_threshold,
            scheme=self._variants.get(scheme_key),
        )
        spec.validate()
        return spec

    def report(self, benchmark: str, scheme_key: str) -> DbtReport:
        """The cached report for one (benchmark, scheme) cell."""
        cell = (benchmark, scheme_key)
        if cell not in self._cache:
            self._cache[cell] = self.engine.run_one(
                self._spec(benchmark, scheme_key)
            )
        return self._cache[cell]

    def prefetch(
        self,
        scheme_keys: Iterable[str],
        benchmarks: Optional[Iterable[str]] = None,
    ) -> None:
        """Run every missing (benchmark, scheme) cell as one engine batch.

        This is where parallel executors get their fan-out: figures that
        follow hit the in-process memo and render in input order.
        """
        benches = list(benchmarks) if benchmarks else self.config.benchmarks
        cells = [
            (bench, key)
            for bench in benches
            for key in scheme_keys
            if (bench, key) not in self._cache
        ]
        if not cells:
            return
        reports = self.engine.run([self._spec(b, k) for b, k in cells])
        for cell, report in zip(cells, reports):
            self._cache[cell] = report

    def speedup(self, benchmark: str, scheme_key: str) -> float:
        """Speedup of ``scheme_key`` over the no-alias-hardware baseline."""
        baseline = self.report(benchmark, "none").total_cycles
        cycles = self.report(benchmark, scheme_key).total_cycles
        return baseline / cycles if cycles else 0.0

    def sweep(
        self, scheme_keys: Iterable[str]
    ) -> Dict[str, Dict[str, DbtReport]]:
        """Reports for every benchmark under every given scheme."""
        keys = list(scheme_keys)
        self.prefetch(keys)
        return {
            bench: {key: self.report(bench, key) for key in keys}
            for bench in self.config.benchmarks
        }


def geomean(values: Iterable[float]) -> float:
    values = [v for v in values if v > 0]
    if not values:
        return 0.0
    product = 1.0
    for v in values:
        product *= v
    return product ** (1.0 / len(values))
