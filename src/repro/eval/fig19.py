"""Figure 19: constraints per memory operation.

Paper result: ~1.3 check-constraints and ~0.1 anti-constraints inserted
per scheduled memory operation — i.e. the constraint graph is sparse, with
edge count close to node count, which is what makes the constraint-order
allocation fast.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.eval.report import render_table
from repro.eval.suite import SuiteRunner


@dataclass
class Fig19Result:
    #: benchmark -> check constraints per memory op
    checks_per_memop: Dict[str, float] = field(default_factory=dict)
    #: benchmark -> anti constraints per memory op
    antis_per_memop: Dict[str, float] = field(default_factory=dict)
    #: benchmark -> AMOV instructions per memory op
    amovs_per_memop: Dict[str, float] = field(default_factory=dict)
    mean_checks: float = 0.0
    mean_antis: float = 0.0


def run_fig19(runner: SuiteRunner) -> Fig19Result:
    result = Fig19Result()
    for bench in runner.config.benchmarks:
        report = runner.report(bench, "smarq")
        snapshots = list(report.region_stats.values())
        mem = sum(s.memory_ops for s in snapshots)
        if mem == 0:
            continue
        result.checks_per_memop[bench] = (
            sum(s.check_constraints for s in snapshots) / mem
        )
        result.antis_per_memop[bench] = (
            sum(s.anti_constraints for s in snapshots) / mem
        )
        result.amovs_per_memop[bench] = sum(s.amovs for s in snapshots) / mem
    checks = list(result.checks_per_memop.values())
    antis = list(result.antis_per_memop.values())
    result.mean_checks = sum(checks) / len(checks) if checks else 0.0
    result.mean_antis = sum(antis) / len(antis) if antis else 0.0
    return result


def render_fig19(result: Fig19Result) -> str:
    rows = [
        [
            bench,
            result.checks_per_memop[bench],
            result.antis_per_memop[bench],
            result.amovs_per_memop[bench],
        ]
        for bench in result.checks_per_memop
    ]
    rows.append(["MEAN", result.mean_checks, result.mean_antis, ""])
    return render_table(
        "Figure 19: Constraints per Memory Operation",
        ["benchmark", "check/memop", "anti/memop", "amov/memop"],
        rows,
        note=(
            "Paper: ~1.3 check and ~0.1 anti constraints per memory "
            "operation — a sparse constraint graph."
        ),
    )
