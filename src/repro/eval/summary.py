"""One-call reproduction summary.

``run_all`` executes every table/figure over one shared suite sweep and
returns the rendered report as a single string (what ``python -m repro
figures`` prints, and what EXPERIMENTS.md quotes). ``headline`` distills
the six numbers the README table shows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.eval.fig14 import render_fig14, run_fig14
from repro.eval.fig15 import SCHEMES as _FIG15_SCHEMES
from repro.eval.fig15 import render_fig15, run_fig15
from repro.eval.fig16 import (
    NO_STORE_REORDER_KEY,
    register_variant,
    render_fig16,
    run_fig16,
)
from repro.eval.fig17 import render_fig17, run_fig17
from repro.eval.fig18 import render_fig18, run_fig18
from repro.eval.fig19 import render_fig19, run_fig19
from repro.eval.suite import SuiteConfig, SuiteRunner
from repro.eval.table1 import render_table1, run_table1


def _prefetch_all(runner: SuiteRunner) -> None:
    """Batch every cell the figures need (one engine fan-out)."""
    register_variant(runner)
    runner.prefetch(
        ("none",) + tuple(_FIG15_SCHEMES) + (NO_STORE_REORDER_KEY,)
    )


@dataclass
class Headline:
    """The six headline numbers (paper values in EXPERIMENTS.md)."""

    smarq_speedup: float
    smarq16_gap: float
    itanium_gap: float
    store_reorder_mean: float
    working_set_reduction: float
    checks_per_memop: float
    antis_per_memop: float


def run_all(runner: Optional[SuiteRunner] = None) -> str:
    """Render every table and figure into one report string."""
    runner = runner or SuiteRunner(SuiteConfig())
    _prefetch_all(runner)
    sections = [
        render_table1(run_table1()),
        render_fig14(run_fig14(runner)),
        render_fig15(run_fig15(runner)),
        render_fig16(run_fig16(runner)),
        render_fig17(run_fig17(runner)),
        render_fig18(run_fig18(runner)),
        render_fig19(run_fig19(runner)),
    ]
    return "\n\n".join(sections)


def headline(runner: Optional[SuiteRunner] = None) -> Headline:
    """The README's summary numbers, computed from one sweep."""
    runner = runner or SuiteRunner(SuiteConfig())
    _prefetch_all(runner)
    fig15 = run_fig15(runner)
    fig16 = run_fig16(runner)
    fig17 = run_fig17(runner)
    fig19 = run_fig19(runner)
    smarq = fig15.geomeans["smarq"]
    return Headline(
        smarq_speedup=smarq,
        smarq16_gap=(smarq - fig15.geomeans["smarq16"]) / smarq,
        itanium_gap=(smarq - fig15.geomeans["itanium"]) / smarq,
        store_reorder_mean=fig16.mean_impact,
        working_set_reduction=fig17.mean_reduction_vs_all,
        checks_per_memop=fig19.mean_checks,
        antis_per_memop=fig19.mean_antis,
    )
