"""SMARQ reproduction — Software-Managed Alias Register Queue.

Top-level convenience exports; see the subpackages for the full API:

* :mod:`repro.smarq` — the paper's allocator and validator
* :mod:`repro.sim` — the end-to-end dynamic binary translator
* :mod:`repro.workloads` — synthetic SPECFP2000 stand-ins
* :mod:`repro.eval` — the per-table/figure experiment harness
"""

__version__ = "1.0.0"

from repro.sim.dbt import DbtReport, DbtSystem, run_program
from repro.sim.schemes import SCHEME_NAMES, make_scheme
from repro.workloads import SPECFP_BENCHMARKS, make_benchmark

__all__ = [
    "DbtReport",
    "DbtSystem",
    "SCHEME_NAMES",
    "SPECFP_BENCHMARKS",
    "__version__",
    "make_benchmark",
    "make_scheme",
    "run_program",
]
