"""Lightweight counters and per-phase wall-clock timing.

A :class:`Tracer` is threaded through :class:`~repro.sim.dbt.DbtSystem`,
:class:`~repro.sim.runtime.DynamicOptimizationRuntime` and
:class:`~repro.sim.vliw.VliwSimulator`; each simulation job gets its own
instance and the engine merges the snapshots afterwards. The default
:class:`NullTracer` makes every hook a no-op so uninstrumented runs pay
(almost) nothing.

Counter names used by the simulation stack:

``dbt.runs``
    completed :meth:`DbtSystem.run` invocations (the number the warm-cache
    acceptance check asserts is zero);
``runtime.translations`` / ``runtime.reoptimizations``
    region (re)translation counts;
``runtime.alias_exceptions`` / ``runtime.false_positive_exceptions``
    alias-exception rates;
``vliw.regions_executed``
    translated-region entries;
``vliw.plan_hits`` / ``vliw.plan_misses``
    timing-plan replay signatures served in O(1) vs first-seen (a miss
    consults the compiled cumulative plan once, then memoizes);
``vliw.plan_compiles``
    per-trace cumulative timing-plan compilations (at most one per
    compiled region trace);
``vliw.plan_invalidations``
    translations whose cached trace + plans were dropped on
    re-optimization or blacklisting;
``vliw.replay_compiles``
    straight-line replay functions generated for hot traces (tier 2 of
    the planned executor, at most one per compiled region trace).

Phase names: ``run`` (whole DBT loop), ``optimize`` (translation +
scheduling + allocation), ``execute`` (translated-region simulation).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator, Mapping


class Tracer:
    """Accumulates named counters and per-phase wall time (seconds)."""

    __slots__ = ("counters", "timings")

    def __init__(self) -> None:
        self.counters: Dict[str, int] = {}
        self.timings: Dict[str, float] = {}

    # -- counters ------------------------------------------------------
    def count(self, name: str, n: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + n

    # -- phases --------------------------------------------------------
    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.timings[name] = self.timings.get(name, 0.0) + elapsed

    # -- aggregation ---------------------------------------------------
    def merge(
        self,
        counters: Mapping[str, int],
        timings: Mapping[str, float],
    ) -> None:
        """Fold another tracer's snapshot into this one."""
        for name, value in counters.items():
            self.counters[name] = self.counters.get(name, 0) + value
        for name, value in timings.items():
            self.timings[name] = self.timings.get(name, 0.0) + value

    def snapshot(self) -> Dict[str, dict]:
        return {"counters": dict(self.counters), "timings": dict(self.timings)}


class NullTracer(Tracer):
    """Tracer whose hooks do nothing (the default everywhere)."""

    def count(self, name: str, n: int = 1) -> None:
        pass

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        yield


#: shared default instance; safe because it keeps no state
NULL_TRACER = NullTracer()
