"""Lightweight counters and per-phase wall-clock timing.

A :class:`Tracer` is threaded through :class:`~repro.sim.dbt.DbtSystem`,
:class:`~repro.sim.runtime.DynamicOptimizationRuntime` and
:class:`~repro.sim.vliw.VliwSimulator`; each simulation job gets its own
instance and the engine merges the snapshots afterwards. The default
:class:`NullTracer` makes every hook a no-op so uninstrumented runs pay
(almost) nothing.

Counter names used by the simulation stack:

``dbt.runs``
    completed :meth:`DbtSystem.run` invocations (the number the warm-cache
    acceptance check asserts is zero);
``runtime.translations`` / ``runtime.reoptimizations``
    region (re)translation counts;
``runtime.alias_exceptions`` / ``runtime.false_positive_exceptions``
    alias-exception rates;
``vliw.regions_executed``
    translated-region entries;
``vliw.plan_hits`` / ``vliw.plan_misses``
    timing-plan replay signatures served in O(1) vs first-seen (a miss
    consults the compiled cumulative plan once, then memoizes);
``vliw.plan_compiles``
    per-trace cumulative timing-plan compilations (at most one per
    compiled region trace);
``vliw.plan_invalidations``
    translations whose cached trace + plans were dropped on
    re-optimization or blacklisting;
``vliw.replay_compiles``
    timing plans that adopted the compiled ``py`` replay tier for their
    trace (at most one per compiled region trace; an adoption served
    from an already-compiled shared artifact also counts
    ``vliw.replay_cache_hits`` — no codegen ran for it);
``vliw.replay_cache_hits``
    replay adoptions served from the process-wide artifact cache
    (content-identical region clones sharing lowered IR + kernels);
``vliw.backend_interp`` / ``vliw.backend_py`` / ``vliw.backend_vec`` /
``vliw.backend_batch``
    region executions per replay backend tier (the generic dispatch
    loop, the generated straight-line function, the vectorized kernel,
    and the cross-iteration batched kernel; counted only while a real
    tracer is installed — they are observability counters, not report
    fields; the four partition ``vliw.regions_executed``);
``vliw.vec_compiles``
    vectorized kernels compiled from lowered replay IR;
``vliw.vec_fallbacks``
    vec executions that hit a runtime fact outside the kernel's static
    model and re-ran on the ``py`` tier (repeated fallbacks demote the
    trace to ``py`` for good);
``vliw.batch_compiles`` / ``vliw.batch_iterations`` / ``vliw.batch_trims``
    batched kernels compiled, region iterations committed inside batch
    calls, and batches trimmed by the prefilter or a guarded escape
    (the trimmed iteration rolls back and re-runs on the ``py`` tier;
    repeated early trims demote the trace out of the batch tier);
``translate.cache_hits`` / ``translate.cache_misses``
    full-translation lookups in the content-keyed translation cache (a
    hit clones a previously optimized region instead of re-optimizing);
``translate.cache_stores``
    optimized regions serialized into the translation cache;
``translate.elim_hits`` / ``translate.deps_hits`` / ``translate.ddg_hits``
    / ``translate.prep_hits``
    stage-memo hits inside a full-translation miss: the elimination
    blob, base memory dependences, DDG structure, and scheduler priority
    tables reused from an earlier translation of the same content
    (each has a matching ``*_misses`` counter);
``translate.persist_hits`` / ``translate.persist_misses`` /
``translate.persist_stores``
    persistent-tier traffic (opt-in, see
    :mod:`repro.opt.translation_cache`).

Phase names: ``run`` (whole DBT loop), ``optimize`` (translation +
scheduling + allocation), ``execute`` (translated-region simulation).
Inside ``optimize`` the pipeline times its sub-phases:
``optimize.constraints`` (alias analysis, eliminations, dependence
derivation), ``optimize.ddg`` (dependence-graph build), ``optimize.schedule``
(list scheduling including the allocator hook), ``optimize.alloc`` (the
allocator-hook share of scheduling, accumulated via :meth:`Tracer.add_time`
— a subset of ``optimize.schedule``, not additive with it) and
``optimize.cache`` (translation-cache fingerprinting and blob (de)serialization).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator, Mapping


class Tracer:
    """Accumulates named counters and per-phase wall time (seconds)."""

    __slots__ = ("counters", "timings")

    #: False on :class:`NullTracer`; hot paths consult it before paying
    #: for per-event ``perf_counter`` bracketing that would be discarded.
    active = True

    def __init__(self) -> None:
        self.counters: Dict[str, int] = {}
        self.timings: Dict[str, float] = {}

    # -- counters ------------------------------------------------------
    def count(self, name: str, n: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + n

    # -- phases --------------------------------------------------------
    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.timings[name] = self.timings.get(name, 0.0) + elapsed

    def add_time(self, name: str, seconds: float) -> None:
        """Fold an externally measured duration into a phase total (for
        callers that accumulate many tiny intervals and report once)."""
        self.timings[name] = self.timings.get(name, 0.0) + seconds

    # -- aggregation ---------------------------------------------------
    def merge(
        self,
        counters: Mapping[str, int],
        timings: Mapping[str, float],
    ) -> None:
        """Fold another tracer's snapshot into this one."""
        for name, value in counters.items():
            self.counters[name] = self.counters.get(name, 0) + value
        for name, value in timings.items():
            self.timings[name] = self.timings.get(name, 0.0) + value

    def snapshot(self) -> Dict[str, dict]:
        return {"counters": dict(self.counters), "timings": dict(self.timings)}


class NullTracer(Tracer):
    """Tracer whose hooks do nothing (the default everywhere)."""

    active = False

    def count(self, name: str, n: int = 1) -> None:
        pass

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        yield

    def add_time(self, name: str, seconds: float) -> None:
        pass


#: shared default instance; safe because it keeps no state
NULL_TRACER = NullTracer()
