"""Job specifications: what one simulation run is, and how it is keyed.

A :class:`JobSpec` names one (benchmark, scheme, configuration) cell.
Specs are plain data so the process-pool executor can ship them to
workers, and :func:`job_fingerprint` content-hashes every field that can
change the resulting report — benchmark, scheme key *and* the scheme's
full parameterization, workload scale, hot threshold, report schema and
repro version — so the persistent cache never serves a report produced
under different settings.

:func:`execute_job` is the single entry point every executor calls; it is
a module-level function so :mod:`concurrent.futures` can pickle it.
"""

from __future__ import annotations

import dataclasses
import enum
import functools
import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

from repro.sim.dbt import REPORT_SCHEMA_VERSION, DbtReport
from repro.sim.schemes import SCHEME_NAMES, Scheme


@dataclass
class JobSpec:
    """One (benchmark, scheme) simulation at a given configuration.

    ``scheme`` carries a prebuilt variant :class:`Scheme` for
    experiment-registered configurations; when it is ``None`` the worker
    builds the scheme from ``scheme_key`` (one of the standard names).
    """

    benchmark: str
    scheme_key: str
    scale: float = 0.25
    hot_threshold: int = 20
    scheme: Optional[Scheme] = None

    def validate(self) -> None:
        if self.scheme is None and self.scheme_key not in SCHEME_NAMES:
            raise ValueError(
                f"unknown scheme {self.scheme_key!r}; choose from "
                f"{SCHEME_NAMES} or register a variant Scheme"
            )


@dataclass
class JobResult:
    """A finished job: the report plus the job's tracer snapshot."""

    fingerprint: str
    report: DbtReport
    counters: Dict[str, int] = field(default_factory=dict)
    timings: Dict[str, float] = field(default_factory=dict)
    from_cache: bool = False


# ----------------------------------------------------------------------
# Fingerprinting


def _qualname(obj) -> str:
    mod = getattr(obj, "__module__", "")
    name = getattr(obj, "__qualname__", getattr(obj, "__name__", repr(obj)))
    return f"{mod}.{name}"


def canonical_config(obj):
    """JSON-serializable, deterministic form of a config object tree.

    Also the equality oracle :meth:`SuiteRunner.register_variant` uses to
    decide whether a re-registered variant actually changed.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            f.name: canonical_config(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
    if isinstance(obj, enum.Enum):
        return obj.name
    if isinstance(obj, Mapping):
        items = {str(canonical_config(k)): canonical_config(v) for k, v in obj.items()}
        return dict(sorted(items.items()))
    if isinstance(obj, (list, tuple)):
        return [canonical_config(x) for x in obj]
    if isinstance(obj, (set, frozenset)):
        return sorted((canonical_config(x) for x in obj), key=str)
    if isinstance(obj, functools.partial):
        return {
            "partial": _qualname(obj.func),
            "args": [canonical_config(a) for a in obj.args],
            "kwargs": canonical_config(obj.keywords),
        }
    if callable(obj):
        return _qualname(obj)
    if obj is None or isinstance(obj, (str, int, float, bool)):
        return obj
    return repr(obj)


def job_fingerprint(spec: JobSpec) -> str:
    """Stable content hash of everything that determines the report."""
    from repro import __version__

    payload = {
        "repro_version": __version__,
        "report_schema": REPORT_SCHEMA_VERSION,
        "benchmark": spec.benchmark,
        "scheme_key": spec.scheme_key,
        "scheme": canonical_config(spec.scheme) if spec.scheme is not None else None,
        "scale": spec.scale,
        "hot_threshold": spec.hot_threshold,
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# Execution


def execute_job(spec: JobSpec) -> JobResult:
    """Run one simulation job with a fresh, private tracer.

    Imports are local so forked pool workers resolve them lazily and the
    module stays cheap to import from the CLI.
    """
    from repro.engine.instrumentation import Tracer
    from repro.frontend.profiler import ProfilerConfig
    from repro.sim.dbt import DbtSystem
    from repro.workloads import make_benchmark

    spec.validate()
    tracer = Tracer()
    program = make_benchmark(spec.benchmark, scale=spec.scale)
    system = DbtSystem(
        program,
        spec.scheme if spec.scheme is not None else spec.scheme_key,
        profiler_config=ProfilerConfig(hot_threshold=spec.hot_threshold),
        tracer=tracer,
    )
    report = system.run()
    return JobResult(
        fingerprint=job_fingerprint(spec),
        report=report,
        counters=dict(tracer.counters),
        timings=dict(tracer.timings),
    )
