"""Executors: strategies for running a batch of simulation jobs.

Every executor honors the same contract: given a sequence of
:class:`~repro.engine.jobs.JobSpec`, return the matching
:class:`~repro.engine.jobs.JobResult` list *in input order* — parallel
execution must be observationally identical to serial execution apart
from wall time.

:class:`ParallelExecutor` fans jobs across a
:class:`concurrent.futures.ProcessPoolExecutor`. Any job a worker cannot
take (unpicklable variant scheme, crashed worker, broken pool) falls back
to in-process serial execution, so a parallel run can degrade but never
fail where a serial run would have succeeded.
"""

from __future__ import annotations

import os
from typing import List, Optional, Sequence

from repro.engine.jobs import JobResult, JobSpec, execute_job


class Executor:
    """Strategy interface for running job batches."""

    def run(self, specs: Sequence[JobSpec]) -> List[JobResult]:
        raise NotImplementedError

    @property
    def fallbacks(self) -> int:
        """Jobs that had to fall back to serial execution (0 for serial)."""
        return 0


class SerialExecutor(Executor):
    """Runs every job in-process, in order (the original behavior)."""

    def run(self, specs: Sequence[JobSpec]) -> List[JobResult]:
        return [execute_job(spec) for spec in specs]


class ParallelExecutor(Executor):
    """Fans jobs across worker processes; falls back per job on failure.

    With ``keep_alive=True`` the worker pool outlives individual ``run``
    calls: long-running hosts (the ``repro serve`` daemon) pay the pool
    spin-up cost once instead of per batch. A pool broken by a dying
    worker is discarded and lazily rebuilt on the next batch, so one
    crashed job never takes the host down with it.
    """

    def __init__(
        self, max_workers: Optional[int] = None, keep_alive: bool = False
    ) -> None:
        self.max_workers = max(1, max_workers or os.cpu_count() or 1)
        self.keep_alive = keep_alive
        self._pool = None
        self._fallbacks = 0

    @property
    def fallbacks(self) -> int:
        return self._fallbacks

    def _acquire_pool(self):
        import concurrent.futures as cf

        if not self.keep_alive:
            return cf.ProcessPoolExecutor(max_workers=self.max_workers)
        if self._pool is None:
            self._pool = cf.ProcessPoolExecutor(max_workers=self.max_workers)
        return self._pool

    def _release_pool(self, pool, broken: bool) -> None:
        if broken or not self.keep_alive:
            try:
                pool.shutdown(wait=not broken)
            except Exception:
                pass
            if pool is self._pool:
                self._pool = None

    def close(self) -> None:
        """Shut the persistent pool down (no-op without keep_alive)."""
        if self._pool is not None:
            self._pool.shutdown(wait=False)
            self._pool = None

    def run(self, specs: Sequence[JobSpec]) -> List[JobResult]:
        import concurrent.futures as cf

        specs = list(specs)
        if len(specs) <= 1 or self.max_workers == 1:
            return SerialExecutor().run(specs)

        results: List[Optional[JobResult]] = [None] * len(specs)
        pending: List[int] = []
        pool = self._acquire_pool()
        broken = False
        try:
            futures = {}
            for i, spec in enumerate(specs):
                try:
                    futures[pool.submit(execute_job, spec)] = i
                except Exception:
                    pending.append(i)
            for future, i in futures.items():
                try:
                    results[i] = future.result()
                except ValueError:
                    raise  # bad spec fails identically in a worker
                except cf.process.BrokenProcessPool:
                    broken = True
                    pending.append(i)
                except Exception:
                    # Unpicklable scheme, killed worker, broken pool:
                    # redo this job in-process.
                    pending.append(i)
        except cf.process.BrokenProcessPool:
            broken = True
            pending.extend(
                i for i, r in enumerate(results)
                if r is None and i not in pending
            )
        finally:
            self._release_pool(pool, broken)

        for i in sorted(set(pending)):
            results[i] = execute_job(specs[i])
            self._fallbacks += 1
        return [r for r in results if r is not None]


def make_executor(jobs: int = 1) -> Executor:
    """Serial for ``jobs <= 1``, a process pool of ``jobs`` otherwise."""
    if jobs <= 1:
        return SerialExecutor()
    return ParallelExecutor(max_workers=jobs)
