"""Persistent, content-addressed report cache.

Reports are stored one JSON file per job fingerprint under a cache root
(default ``~/.cache/repro``, overridable via the ``REPRO_CACHE_DIR``
environment variable or the constructor). Because the fingerprint hashes
the full job configuration plus the repro version and report schema (see
:func:`repro.engine.jobs.job_fingerprint`), a hit is always safe to
serve verbatim.

Corrupted or unreadable cache files are treated as misses (and removed
best-effort), so a damaged cache degrades to a fresh run, never a crash.
"""

from __future__ import annotations

import json
import os
import sys
import tempfile
from pathlib import Path
from typing import Optional

from repro.sim.dbt import DbtReport

_ENV_VAR = "REPRO_CACHE_DIR"
_DEFAULT_ROOT = "~/.cache/repro"


class ReportCache:
    """Filesystem-backed DbtReport store keyed by job fingerprint."""

    def __init__(self, root: Optional[os.PathLike] = None) -> None:
        if root is None:
            root = os.environ.get(_ENV_VAR, _DEFAULT_ROOT)
        self.root = Path(root).expanduser()
        self.hits = 0
        self.misses = 0
        self._warned_unwritable = False

    def _path(self, fingerprint: str) -> Path:
        return self.root / f"{fingerprint}.json"

    def get(self, fingerprint: str) -> Optional[DbtReport]:
        """The cached report, or None on a miss or a corrupt entry."""
        path = self._path(fingerprint)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                payload = json.load(fh)
            report = DbtReport.from_dict(payload["report"])
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, ValueError, KeyError, TypeError):
            # Corrupt entry: drop it and fall back to a fresh run.
            try:
                path.unlink()
            except OSError:
                pass
            self.misses += 1
            return None
        self.hits += 1
        return report

    def put(self, fingerprint: str, report: DbtReport) -> None:
        """Store a report atomically (write-to-temp, then rename).

        Best-effort: an unwritable cache root degrades to uncached
        operation (with a one-time stderr warning), never a failed run.
        """
        payload = {"fingerprint": fingerprint, "report": report.to_dict()}
        tmp = None
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=str(self.root), suffix=".tmp")
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(payload, fh)
            os.replace(tmp, self._path(fingerprint))
        except OSError as exc:
            if tmp is not None:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
            if not self._warned_unwritable:
                self._warned_unwritable = True
                print(
                    f"repro: report cache at {self.root} is unwritable "
                    f"({exc}); continuing without persistence",
                    file=sys.stderr,
                )

    def clear(self) -> int:
        """Delete every cache entry; returns how many were removed."""
        removed = 0
        if self.root.is_dir():
            for path in self.root.glob("*.json"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed


class NullCache:
    """Cache that stores nothing; every lookup is a miss."""

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0

    def get(self, fingerprint: str) -> Optional[DbtReport]:
        self.misses += 1
        return None

    def put(self, fingerprint: str, report: DbtReport) -> None:
        pass

    def clear(self) -> int:
        return 0
