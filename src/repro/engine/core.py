"""ExecutionEngine: cache-aware, instrumented job orchestration.

The engine is the single funnel every report request goes through:

1. fingerprint each :class:`~repro.engine.jobs.JobSpec`;
2. probe the report cache, serving hits without simulating;
3. hand the misses to the configured executor (serial or process-pool);
4. store fresh reports back into the cache;
5. merge every job's tracer snapshot into engine-wide statistics.

Results always come back in request order regardless of executor, so
figure output is byte-identical across ``--jobs`` settings.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.engine.cache import NullCache
from repro.engine.executor import Executor, SerialExecutor
from repro.engine.instrumentation import Tracer
from repro.engine.jobs import JobResult, JobSpec, job_fingerprint
from repro.sim.dbt import DbtReport


@dataclass
class EngineStats:
    """Aggregated facts about every job the engine has run."""

    jobs: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    #: jobs that actually simulated (should be 0 on a fully warm cache)
    simulated_runs: int = 0
    serial_fallbacks: int = 0
    wall_seconds: float = 0.0
    counters: Dict[str, int] = field(default_factory=dict)
    timings: Dict[str, float] = field(default_factory=dict)


class ExecutionEngine:
    """Executor + cache + instrumentation behind one ``run`` call."""

    def __init__(
        self,
        executor: Optional[Executor] = None,
        cache=None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.executor = executor or SerialExecutor()
        self.cache = cache if cache is not None else NullCache()
        self.tracer = tracer or Tracer()
        self.stats = EngineStats()

    # ------------------------------------------------------------------
    def run(self, specs: Sequence[JobSpec]) -> List[DbtReport]:
        """Reports for every spec, in input order."""
        return [r.report for r in self.run_results(specs)]

    def run_results(self, specs: Sequence[JobSpec]) -> List[JobResult]:
        """Full :class:`JobResult` records for every spec, in input order.

        Same pipeline as :meth:`run`, but callers that need provenance —
        the job fingerprint, whether the report came from the cache, the
        per-job tracer snapshot — get it instead of the bare report. The
        serve daemon streams these fields per job.
        """
        specs = list(specs)
        for spec in specs:
            spec.validate()
        start = time.perf_counter()

        fingerprints = [job_fingerprint(spec) for spec in specs]
        results: List[Optional[JobResult]] = [None] * len(specs)
        miss_indices: List[int] = []
        for i, (spec, fp) in enumerate(zip(specs, fingerprints)):
            report = self.cache.get(fp)
            if report is not None:
                results[i] = JobResult(
                    fingerprint=fp, report=report, from_cache=True
                )
                self.stats.cache_hits += 1
                self.tracer.count("engine.cache_hits")
            else:
                miss_indices.append(i)
                self.stats.cache_misses += 1
                self.tracer.count("engine.cache_misses")

        if miss_indices:
            # A single miss is never worth a worker pool.
            executor = (
                self.executor if len(miss_indices) > 1 else SerialExecutor()
            )
            fresh = executor.run([specs[i] for i in miss_indices])
            for i, result in zip(miss_indices, fresh):
                results[i] = result
                self.cache.put(result.fingerprint, result.report)
                self.stats.simulated_runs += 1
                self.tracer.merge(result.counters, result.timings)

        # Synced unconditionally: a fully warm cache must still report the
        # executor's lifetime fallback count, not a stale zero.
        self.stats.serial_fallbacks = self.executor.fallbacks
        self.stats.jobs += len(specs)
        self.stats.wall_seconds += time.perf_counter() - start
        self.stats.counters = dict(self.tracer.counters)
        self.stats.timings = dict(self.tracer.timings)
        return [r for r in results if r is not None]

    def run_one(self, spec: JobSpec) -> DbtReport:
        """Convenience wrapper for a single job (always in-process)."""
        return self.run([spec])[0]

    # ------------------------------------------------------------------
    def render_stats(self) -> str:
        """Human-readable ``--stats`` summary."""
        s = self.stats
        c, t = s.counters, s.timings
        lines = [
            "Engine statistics",
            "=================",
            f"jobs                  : {s.jobs}",
            f"cache hits / misses   : {s.cache_hits} / {s.cache_misses}",
            f"simulated runs        : {s.simulated_runs} "
            f"(DbtSystem.run calls: {c.get('dbt.runs', 0)})",
            f"serial fallbacks      : {s.serial_fallbacks}",
            f"engine wall time      : {s.wall_seconds:.2f}s",
        ]
        if c.get("runtime.translations") or s.simulated_runs:
            lines += [
                f"region translations   : {c.get('runtime.translations', 0)} "
                f"(+{c.get('runtime.reoptimizations', 0)} re-opts)",
                f"alias exceptions      : "
                f"{c.get('runtime.alias_exceptions', 0)} "
                f"({c.get('runtime.false_positive_exceptions', 0)} false "
                f"positives)",
                f"regions executed      : "
                f"{c.get('vliw.regions_executed', 0)}",
            ]
            batch = c.get("vliw.backend_batch", 0)
            tiers = (
                f"replay backends       : "
                f"{c.get('vliw.backend_interp', 0)} interp / "
                f"{c.get('vliw.backend_py', 0)} py / "
                f"{c.get('vliw.backend_vec', 0)} vec / "
                f"{batch} batch"
            )
            if batch:
                from repro.sim.replay_backends import batch_flavor

                tiers += (
                    f" ({c.get('vliw.batch_iterations', 0)} batched "
                    f"iters, {batch_flavor()} prefilter)"
                )
            lines.append(tiers)
        plan_hits = c.get("vliw.plan_hits", 0)
        plan_misses = c.get("vliw.plan_misses", 0)
        lookups = plan_hits + plan_misses
        if lookups or c.get("vliw.plan_invalidations"):
            rate = f" ({plan_hits / lookups:.0%} hit)" if lookups else ""
            lines += [
                f"timing-plan lookups   : {plan_hits} hits / "
                f"{plan_misses} misses{rate}",
                f"timing-plan compiles  : "
                f"{c.get('vliw.plan_compiles', 0)} signatures, "
                f"{c.get('vliw.replay_compiles', 0)} replay fns, "
                f"{c.get('vliw.plan_invalidations', 0)} invalidations",
            ]
        tc_hits = c.get("translate.cache_hits", 0)
        tc_misses = c.get("translate.cache_misses", 0)
        tc_lookups = tc_hits + tc_misses
        if tc_lookups:
            rate = f" ({tc_hits / tc_lookups:.0%} hit)"
            stage_bits = []
            for stage in ("elim", "deps", "ddg", "prep"):
                hits = c.get(f"translate.{stage}_hits", 0)
                total = hits + c.get(f"translate.{stage}_misses", 0)
                if total:
                    stage_bits.append(f"{stage} {hits}/{total}")
            lines.append(
                f"translation cache     : {tc_hits} hits / "
                f"{tc_misses} misses{rate}"
            )
            if stage_bits:
                lines.append(
                    f"stage memo hits       : {', '.join(stage_bits)}"
                )
        if t:
            lines.append("per-phase wall time (summed across jobs):")
            for name in sorted(t):
                lines.append(f"  {name:<19} : {t[name]:.3f}s")
        return "\n".join(lines)
