"""Execution engine: how (benchmark x scheme) simulation jobs get run.

Three cooperating layers, each independently replaceable:

* **executors** (:mod:`repro.engine.executor`) — a common
  :class:`Executor` interface with a serial implementation and a
  process-pool implementation that fans jobs across cores with
  deterministic result ordering and graceful per-job fallback to serial
  execution;
* **persistent report cache** (:mod:`repro.engine.cache`) — content-hashed
  :class:`~repro.sim.dbt.DbtReport` storage under ``~/.cache/repro`` (or
  ``$REPRO_CACHE_DIR``), so regenerating figures after an unrelated edit
  is near-instant;
* **instrumentation** (:mod:`repro.engine.instrumentation`) — a
  lightweight :class:`Tracer` threaded through
  :class:`~repro.sim.dbt.DbtSystem`, the runtime, and the VLIW simulator,
  collecting per-phase wall time and event counters per job.

:class:`~repro.engine.core.ExecutionEngine` ties the layers together and
is what :class:`~repro.eval.suite.SuiteRunner` and the CLI drive.
"""

from repro.engine.cache import NullCache, ReportCache
from repro.engine.core import EngineStats, ExecutionEngine
from repro.engine.executor import (
    Executor,
    ParallelExecutor,
    SerialExecutor,
    make_executor,
)
from repro.engine.instrumentation import NullTracer, Tracer
from repro.engine.jobs import JobResult, JobSpec, execute_job, job_fingerprint

__all__ = [
    "EngineStats",
    "ExecutionEngine",
    "Executor",
    "JobResult",
    "JobSpec",
    "NullCache",
    "NullTracer",
    "ParallelExecutor",
    "ReportCache",
    "SerialExecutor",
    "Tracer",
    "execute_job",
    "job_fingerprint",
    "make_executor",
]
