"""Guest program substrate.

The paper's system translates x86 binaries; our reproduction substitutes a
small RISC-like guest ISA (the same opcode vocabulary as the optimizer IR,
held in a :class:`~repro.frontend.program.GuestProgram` image) so that the
dynamic-optimization loop — interpret, profile, form hot superblocks,
translate, optimize — can be exercised end to end.

* :mod:`repro.frontend.program` — guest code image + data region layout.
* :mod:`repro.frontend.interpreter` — functional execution with profiling
  hooks and per-instruction interpretation cost accounting.
* :mod:`repro.frontend.profiler` — hot/cold execution-count thresholds.
* :mod:`repro.frontend.region` — superblock formation along hot paths
  (branch inversion for taken paths, side exits, cold-block termination).
"""

from repro.frontend.program import GuestProgram
from repro.frontend.interpreter import Interpreter, InterpreterLimit
from repro.frontend.profiler import HotnessProfiler, ProfilerConfig
from repro.frontend.region import RegionFormer, RegionFormationConfig
from repro.frontend.alias_profiler import AliasProfiler

__all__ = [
    "AliasProfiler",
    "GuestProgram",
    "HotnessProfiler",
    "Interpreter",
    "InterpreterLimit",
    "ProfilerConfig",
    "RegionFormationConfig",
    "RegionFormer",
]
