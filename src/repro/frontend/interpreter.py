"""Guest interpreter.

Functional execution of a :class:`~repro.frontend.program.GuestProgram`
over a :class:`~repro.sim.memory.Memory`. The interpreter is the system's
slow path (paper Figure 1: code runs interpreted until it gets hot) and
also the reference semantics the optimized translations must match.

Integer semantics: registers hold Python ints, 64-bit wrapping on
arithmetic. FP opcodes operate on register values as Python numbers
(synthetic workloads only need arithmetic of the right latency class, not
IEEE bit-accuracy). Loads/stores move unsigned little-endian integers.

Timing: each interpreted guest instruction is charged
``cycles_per_instruction`` simulated cycles (interpretation overhead of a
DBT system); the value is configurable on the runtime's machine model side.

Dispatch: instead of re-branching on the opcode every step, each guest pc
is lazily compiled — once, on first execution — into a specialized handler
closure with its operands bound (a software analog of a threaded-code
dispatch table). ``step()`` then just invokes ``handlers[pc]``. Handlers
read ``trace_hook``/``mem_hook`` through ``self`` at call time, so
profiling hooks can be attached or removed at any point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Set

from typing import TYPE_CHECKING

from repro.frontend.program import GuestProgram
from repro.ir.instruction import Instruction, Opcode

if TYPE_CHECKING:  # avoid importing the sim package at module load
    from repro.sim.memory import Memory

_MASK64 = (1 << 64) - 1


def _wrap(value: int) -> int:
    """Wrap to signed 64-bit."""
    value &= _MASK64
    if value >= 1 << 63:
        value -= 1 << 64
    return value


class InterpreterLimit(Exception):
    """The step budget was exhausted before the program exited."""


@dataclass
class InterpStats:
    instructions: int = 0
    loads: int = 0
    stores: int = 0
    branches_taken: int = 0


class Interpreter:
    """Executes guest instructions one at a time."""

    def __init__(
        self,
        program: GuestProgram,
        memory: "Memory",
        registers: Optional[List[int]] = None,
        num_registers: int = 64,
    ) -> None:
        self.program = program
        self.memory = memory
        if registers is not None:
            self.registers = registers
        else:
            self.registers = [0] * num_registers
            for reg, value in program.initial_registers.items():
                self.registers[reg] = value
        self.pc = program.entry_pc
        self.stats = InterpStats()
        self.exited = False
        self.exit_code: Optional[int] = None
        #: called with the pc of every instruction executed (profiling)
        self.trace_hook: Optional[Callable[[int], None]] = None
        #: called as (pc, addr, size, is_store) on every memory access
        #: (alias profiling)
        self.mem_hook: Optional[Callable[[int, int, int, bool], None]] = None
        #: per-pc compiled handlers, filled lazily by :meth:`_compile`
        self._handlers: List[Optional[Callable[[], None]]] = (
            [None] * len(program)
        )

    # ------------------------------------------------------------------
    def step(self) -> None:
        """Execute one instruction at the current pc."""
        pc = self.pc
        handlers = self._handlers
        handler = handlers[pc] if 0 <= pc < len(handlers) else None
        if handler is None:
            handler = self._compile(pc)
        handler()

    # ------------------------------------------------------------------
    def _compile(self, pc: int) -> Callable[[], None]:
        """Build (and memoize) the specialized handler for one pc.

        Raises the same :class:`IndexError` as fetching an out-of-range pc
        used to, via :meth:`GuestProgram.at`.
        """
        inst = self.program.at(pc)
        self_ = self
        regs = self.registers
        stats = self.stats
        memory = self.memory
        op = inst.opcode
        nxt = pc + 1
        handler: Callable[[], None]

        if op is Opcode.LD:
            base, disp, size, dest = inst.base, inst.disp, inst.size, inst.dest

            def handler() -> None:
                hook = self_.trace_hook
                if hook is not None:
                    hook(pc)
                stats.instructions += 1
                addr = regs[base] + disp
                mem_hook = self_.mem_hook
                if mem_hook is not None:
                    mem_hook(pc, addr, size, False)
                regs[dest] = memory.read(addr, size)
                stats.loads += 1
                self_.pc = nxt

        elif op is Opcode.ST:
            base, disp, size, src = inst.base, inst.disp, inst.size, inst.srcs[0]

            def handler() -> None:
                hook = self_.trace_hook
                if hook is not None:
                    hook(pc)
                stats.instructions += 1
                addr = regs[base] + disp
                mem_hook = self_.mem_hook
                if mem_hook is not None:
                    mem_hook(pc, addr, size, True)
                memory.write(addr, regs[src], size)
                stats.stores += 1
                self_.pc = nxt

        elif op is Opcode.BR:
            target = inst.target

            def handler() -> None:
                hook = self_.trace_hook
                if hook is not None:
                    hook(pc)
                stats.instructions += 1
                stats.branches_taken += 1
                self_.pc = target

        elif op in (Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE):
            a = inst.srcs[0]
            b = inst.srcs[1] if len(inst.srcs) > 1 else None
            target = inst.target
            code = {
                Opcode.BEQ: 0, Opcode.BNE: 1, Opcode.BLT: 2, Opcode.BGE: 3
            }[op]

            def handler() -> None:
                hook = self_.trace_hook
                if hook is not None:
                    hook(pc)
                stats.instructions += 1
                av = regs[a]
                bv = regs[b] if b is not None else 0
                if code == 0:
                    taken = av == bv
                elif code == 1:
                    taken = av != bv
                elif code == 2:
                    taken = av < bv
                else:
                    taken = av >= bv
                if taken:
                    stats.branches_taken += 1
                    self_.pc = target
                else:
                    self_.pc = nxt

        elif op is Opcode.EXIT:
            exit_code = inst.target

            def handler() -> None:
                hook = self_.trace_hook
                if hook is not None:
                    hook(pc)
                stats.instructions += 1
                self_.exited = True
                self_.exit_code = exit_code

        else:
            body = _compile_alu(inst, regs)
            if body is None:

                def handler() -> None:
                    hook = self_.trace_hook
                    if hook is not None:
                        hook(pc)
                    stats.instructions += 1
                    raise ValueError(f"interpreter cannot execute {inst!r}")

            else:

                def handler() -> None:
                    hook = self_.trace_hook
                    if hook is not None:
                        hook(pc)
                    stats.instructions += 1
                    body()
                    self_.pc = nxt

        self._handlers[pc] = handler
        return handler

    # ------------------------------------------------------------------
    def run(self, max_steps: int = 10_000_000) -> int:
        """Run to EXIT; returns the exit code."""
        steps = 0
        handlers = self._handlers
        n = len(handlers)
        while not self.exited:
            if steps >= max_steps:
                raise InterpreterLimit(f"exceeded {max_steps} steps")
            pc = self.pc
            handler = handlers[pc] if 0 <= pc < n else None
            if handler is None:
                handler = self._compile(pc)
            handler()
            steps += 1
        return self.exit_code or 0

    def run_until(
        self, stop_pcs: Set[int], max_steps: int = 1_000_000
    ) -> Optional[int]:
        """Interpret until reaching a pc in ``stop_pcs`` (before executing
        it) or program exit. Returns the stop pc, or None on exit."""
        steps = 0
        handlers = self._handlers
        n = len(handlers)
        while not self.exited:
            pc = self.pc
            if pc in stop_pcs and steps > 0:
                return pc
            if steps >= max_steps:
                raise InterpreterLimit(f"exceeded {max_steps} steps")
            handler = handlers[pc] if 0 <= pc < n else None
            if handler is None:
                handler = self._compile(pc)
            handler()
            steps += 1
        return None


# ----------------------------------------------------------------------
# ALU compilation — one specialized closure per instruction, mirroring the
# original dispatch chain's semantics exactly (including immediate-form
# ADD/SUB, CMP's sign result, and the FP-as-integer arithmetic classes).
# ----------------------------------------------------------------------
def _compile_alu(
    inst: Instruction, regs: List[int]
) -> Optional[Callable[[], None]]:
    """The register-effect body for a non-memory, non-control opcode.

    Returns None for opcodes the interpreter cannot execute (the caller
    compiles a raising handler so the error still fires at execution
    time, after the trace hook and instruction count, as before).
    """
    op = inst.opcode
    dest = inst.dest
    srcs = inst.srcs
    imm = inst.imm

    if op is Opcode.MOVI:
        value = imm or 0
        return lambda: regs.__setitem__(dest, value)
    if op is Opcode.MOV:
        s0 = srcs[0]
        return lambda: regs.__setitem__(dest, regs[s0])
    if op in (Opcode.ADD, Opcode.SUB) and imm is not None:
        s0 = srcs[0]
        delta = imm if op is Opcode.ADD else -imm
        return lambda: regs.__setitem__(dest, _wrap(regs[s0] + delta))
    if op is Opcode.ADD:
        s0, s1 = srcs[0], srcs[1]
        return lambda: regs.__setitem__(dest, _wrap(regs[s0] + regs[s1]))
    if op is Opcode.SUB:
        s0, s1 = srcs[0], srcs[1]
        return lambda: regs.__setitem__(dest, _wrap(regs[s0] - regs[s1]))
    if op is Opcode.MUL:
        s0, s1 = srcs[0], srcs[1]
        return lambda: regs.__setitem__(dest, _wrap(regs[s0] * regs[s1]))
    if op is Opcode.AND:
        s0, s1 = srcs[0], srcs[1]
        return lambda: regs.__setitem__(dest, regs[s0] & regs[s1])
    if op is Opcode.OR:
        s0, s1 = srcs[0], srcs[1]
        return lambda: regs.__setitem__(dest, regs[s0] | regs[s1])
    if op is Opcode.XOR:
        s0, s1 = srcs[0], srcs[1]
        return lambda: regs.__setitem__(dest, regs[s0] ^ regs[s1])
    if op is Opcode.SHL:
        s0, s1 = srcs[0], srcs[1]
        return lambda: regs.__setitem__(
            dest, _wrap(regs[s0] << (regs[s1] & 63))
        )
    if op is Opcode.SHR:
        s0, s1 = srcs[0], srcs[1]
        return lambda: regs.__setitem__(
            dest, (regs[s0] & _MASK64) >> (regs[s1] & 63)
        )
    if op is Opcode.CMP:
        s0, s1 = srcs[0], srcs[1]

        def cmp_body() -> None:
            a, b = regs[s0], regs[s1]
            regs[dest] = (a > b) - (a < b)

        return cmp_body
    if op is Opcode.FADD:
        s0, s1 = srcs[0], srcs[1]
        return lambda: regs.__setitem__(dest, _wrap(regs[s0] + regs[s1]))
    if op is Opcode.FSUB:
        s0, s1 = srcs[0], srcs[1]
        return lambda: regs.__setitem__(dest, _wrap(regs[s0] - regs[s1]))
    if op is Opcode.FMUL:
        s0, s1 = srcs[0], srcs[1]
        return lambda: regs.__setitem__(dest, _wrap(regs[s0] * regs[s1]))
    if op is Opcode.FDIV:
        s0, s1 = srcs[0], srcs[1]

        def fdiv_body() -> None:
            b = regs[s1]
            regs[dest] = regs[s0] // b if b else 0

        return fdiv_body
    if op is Opcode.FMA:
        s0, s1 = srcs[0], srcs[1]
        return lambda: regs.__setitem__(
            dest, _wrap(regs[dest] + regs[s0] * regs[s1])
        )
    if op is Opcode.NOP:
        return lambda: None
    return None
