"""Guest interpreter.

Functional execution of a :class:`~repro.frontend.program.GuestProgram`
over a :class:`~repro.sim.memory.Memory`. The interpreter is the system's
slow path (paper Figure 1: code runs interpreted until it gets hot) and
also the reference semantics the optimized translations must match.

Integer semantics: registers hold Python ints, 64-bit wrapping on
arithmetic. FP opcodes operate on register values as Python numbers
(synthetic workloads only need arithmetic of the right latency class, not
IEEE bit-accuracy). Loads/stores move unsigned little-endian integers.

Timing: each interpreted guest instruction is charged
``cycles_per_instruction`` simulated cycles (interpretation overhead of a
DBT system); the value is configurable on the runtime's machine model side.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set

from typing import TYPE_CHECKING

from repro.frontend.program import GuestProgram
from repro.ir.instruction import Instruction, Opcode

if TYPE_CHECKING:  # avoid importing the sim package at module load
    from repro.sim.memory import Memory

_MASK64 = (1 << 64) - 1


def _wrap(value: int) -> int:
    """Wrap to signed 64-bit."""
    value &= _MASK64
    if value >= 1 << 63:
        value -= 1 << 64
    return value


class InterpreterLimit(Exception):
    """The step budget was exhausted before the program exited."""


@dataclass
class InterpStats:
    instructions: int = 0
    loads: int = 0
    stores: int = 0
    branches_taken: int = 0


class Interpreter:
    """Executes guest instructions one at a time."""

    def __init__(
        self,
        program: GuestProgram,
        memory: "Memory",
        registers: Optional[List[int]] = None,
        num_registers: int = 64,
    ) -> None:
        self.program = program
        self.memory = memory
        if registers is not None:
            self.registers = registers
        else:
            self.registers = [0] * num_registers
            for reg, value in program.initial_registers.items():
                self.registers[reg] = value
        self.pc = program.entry_pc
        self.stats = InterpStats()
        self.exited = False
        self.exit_code: Optional[int] = None
        #: called with the pc of every instruction executed (profiling)
        self.trace_hook: Optional[Callable[[int], None]] = None
        #: called as (pc, addr, size, is_store) on every memory access
        #: (alias profiling)
        self.mem_hook: Optional[Callable[[int, int, int, bool], None]] = None

    # ------------------------------------------------------------------
    def step(self) -> None:
        """Execute one instruction at the current pc."""
        inst = self.program.at(self.pc)
        if self.trace_hook is not None:
            self.trace_hook(self.pc)
        self.stats.instructions += 1
        next_pc = self.pc + 1
        regs = self.registers
        op = inst.opcode

        if op is Opcode.LD:
            addr = regs[inst.base] + inst.disp
            if self.mem_hook is not None:
                self.mem_hook(self.pc, addr, inst.size, False)
            regs[inst.dest] = self.memory.read(addr, inst.size)
            self.stats.loads += 1
        elif op is Opcode.ST:
            addr = regs[inst.base] + inst.disp
            if self.mem_hook is not None:
                self.mem_hook(self.pc, addr, inst.size, True)
            self.memory.write(addr, regs[inst.srcs[0]], inst.size)
            self.stats.stores += 1
        elif op is Opcode.MOVI:
            regs[inst.dest] = inst.imm or 0
        elif op is Opcode.MOV:
            regs[inst.dest] = regs[inst.srcs[0]]
        elif op in (Opcode.ADD, Opcode.SUB) and inst.imm is not None:
            delta = inst.imm if op is Opcode.ADD else -inst.imm
            regs[inst.dest] = _wrap(regs[inst.srcs[0]] + delta)
        elif op is Opcode.ADD:
            regs[inst.dest] = _wrap(regs[inst.srcs[0]] + regs[inst.srcs[1]])
        elif op is Opcode.SUB:
            regs[inst.dest] = _wrap(regs[inst.srcs[0]] - regs[inst.srcs[1]])
        elif op is Opcode.MUL:
            regs[inst.dest] = _wrap(regs[inst.srcs[0]] * regs[inst.srcs[1]])
        elif op is Opcode.AND:
            regs[inst.dest] = regs[inst.srcs[0]] & regs[inst.srcs[1]]
        elif op is Opcode.OR:
            regs[inst.dest] = regs[inst.srcs[0]] | regs[inst.srcs[1]]
        elif op is Opcode.XOR:
            regs[inst.dest] = regs[inst.srcs[0]] ^ regs[inst.srcs[1]]
        elif op is Opcode.SHL:
            regs[inst.dest] = _wrap(regs[inst.srcs[0]] << (regs[inst.srcs[1]] & 63))
        elif op is Opcode.SHR:
            regs[inst.dest] = (regs[inst.srcs[0]] & _MASK64) >> (
                regs[inst.srcs[1]] & 63
            )
        elif op is Opcode.CMP:
            a, b = regs[inst.srcs[0]], regs[inst.srcs[1]]
            regs[inst.dest] = (a > b) - (a < b)
        elif op in (Opcode.FADD, Opcode.FSUB, Opcode.FMUL, Opcode.FDIV, Opcode.FMA):
            a, b = regs[inst.srcs[0]], regs[inst.srcs[1]]
            if op is Opcode.FADD:
                regs[inst.dest] = _wrap(a + b)
            elif op is Opcode.FSUB:
                regs[inst.dest] = _wrap(a - b)
            elif op is Opcode.FMUL:
                regs[inst.dest] = _wrap(a * b)
            elif op is Opcode.FDIV:
                regs[inst.dest] = a // b if b else 0
            else:  # FMA: dest = dest + a * b
                regs[inst.dest] = _wrap(regs[inst.dest] + a * b)
        elif op is Opcode.BR:
            next_pc = inst.target
            self.stats.branches_taken += 1
        elif op in (Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE):
            a = regs[inst.srcs[0]]
            b = regs[inst.srcs[1]] if len(inst.srcs) > 1 else 0
            taken = {
                Opcode.BEQ: a == b,
                Opcode.BNE: a != b,
                Opcode.BLT: a < b,
                Opcode.BGE: a >= b,
            }[op]
            if taken:
                next_pc = inst.target
                self.stats.branches_taken += 1
        elif op is Opcode.EXIT:
            self.exited = True
            self.exit_code = inst.target
            return
        elif op is Opcode.NOP:
            pass
        else:
            raise ValueError(f"interpreter cannot execute {inst!r}")
        self.pc = next_pc

    # ------------------------------------------------------------------
    def run(self, max_steps: int = 10_000_000) -> int:
        """Run to EXIT; returns the exit code."""
        steps = 0
        while not self.exited:
            if steps >= max_steps:
                raise InterpreterLimit(f"exceeded {max_steps} steps")
            self.step()
            steps += 1
        return self.exit_code or 0

    def run_until(
        self, stop_pcs: Set[int], max_steps: int = 1_000_000
    ) -> Optional[int]:
        """Interpret until reaching a pc in ``stop_pcs`` (before executing
        it) or program exit. Returns the stop pc, or None on exit."""
        steps = 0
        while not self.exited:
            if self.pc in stop_pcs and steps > 0:
                return self.pc
            if steps >= max_steps:
                raise InterpreterLimit(f"exceeded {max_steps} steps")
            self.step()
            steps += 1
        return None
