"""Alias profiling during interpretation.

The paper's framework assumes the optimizer knows which MAY-alias pairs
are *likely* to alias (it refuses to speculate on those and lets the
alias hardware guard the rest). Production systems learn this two ways:
from alias exceptions after the fact (implemented in the runtime's
re-optimization policy) and from profiling *before* translation. This
module implements the second: while code still runs interpreted, every
memory access is checked against a sliding window of recent accesses;
overlapping accesses from different pcs become (pc, pc) alias events.

At region-formation time :meth:`hints_for_region` converts the pc-level
profile into the ``(mem_index, mem_index) -> rate`` hints the optimizer
consumes, so known-hot alias pairs are pinned from the very first
translation instead of costing a rollback each.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Tuple

from repro.ir.superblock import Superblock


@dataclass
class _Access:
    pc: int
    start: int
    end: int
    is_store: bool


class AliasProfiler:
    """Sliding-window runtime alias observer (interpretation phase)."""

    def __init__(self, window: int = 32) -> None:
        self._window: Deque[_Access] = deque(maxlen=window)
        #: (lo_pc, hi_pc) -> alias event count
        self.alias_events: Dict[Tuple[int, int], int] = {}
        #: pc -> execution count of that memory instruction
        self.executions: Dict[int, int] = {}

    # ------------------------------------------------------------------
    def observe(self, pc: int, addr: int, size: int, is_store: bool) -> None:
        """Interpreter ``mem_hook``."""
        end = addr + size - 1
        self.executions[pc] = self.executions.get(pc, 0) + 1
        seen_this_access = set()
        for prior in self._window:
            if prior.pc == pc:
                continue
            if not (is_store or prior.is_store):
                continue  # load-load pairs never need detection
            if prior.start <= end and addr <= prior.end:
                key = (min(pc, prior.pc), max(pc, prior.pc))
                if key in seen_this_access:
                    continue  # one event per pair per access, not per
                    # stale window entry
                seen_this_access.add(key)
                self.alias_events[key] = self.alias_events.get(key, 0) + 1
        self._window.append(_Access(pc, addr, end, is_store))

    # ------------------------------------------------------------------
    def rate(self, pc_a: int, pc_b: int) -> float:
        """Observed alias rate of a pc pair (events per execution)."""
        key = (min(pc_a, pc_b), max(pc_a, pc_b))
        events = self.alias_events.get(key, 0)
        if not events:
            return 0.0
        denominator = min(
            self.executions.get(pc_a, 1), self.executions.get(pc_b, 1)
        )
        return min(1.0, events / max(1, denominator))

    def hints_for_region(
        self, region: Superblock, min_rate: float = 0.05
    ) -> Dict[Tuple[int, int], float]:
        """Profile hints keyed by the region's memory-op indices."""
        by_pc: Dict[int, list] = {}
        for op in region.memory_ops():
            if op.guest_pc is not None:
                by_pc.setdefault(op.guest_pc, []).append(op.mem_index)
        hints: Dict[Tuple[int, int], float] = {}
        pcs = sorted(by_pc)
        for i, pc_a in enumerate(pcs):
            for pc_b in pcs[i:]:
                rate = self.rate(pc_a, pc_b)
                if rate < min_rate:
                    continue
                for idx_a in by_pc[pc_a]:
                    for idx_b in by_pc[pc_b]:
                        if idx_a == idx_b:
                            continue
                        lo, hi = sorted((idx_a, idx_b))
                        hints[(lo, hi)] = max(hints.get((lo, hi), 0.0), rate)
        return hints
