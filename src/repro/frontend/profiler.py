"""Hotness profiling (paper Section 6: hot/cold thresholds).

The profiler counts executions of basic-block heads and of branch edges.
A block becomes *hot* when its head's execution count reaches
``hot_threshold``; a block is *cold* (terminates region growth) while its
count is below ``cold_threshold``. Edge counts steer superblock formation
toward the most frequent successor of each conditional branch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Set, Tuple

from repro.frontend.program import GuestProgram


@dataclass
class ProfilerConfig:
    hot_threshold: int = 50
    cold_threshold: int = 5


class HotnessProfiler:
    """Execution-count profiler attached to the interpreter's trace hook."""

    def __init__(self, program: GuestProgram, config: Optional[ProfilerConfig] = None) -> None:
        self.program = program
        self.config = config or ProfilerConfig()
        self._heads: Set[int] = program.block_heads()
        self.block_counts: Dict[int, int] = {}
        self.edge_counts: Dict[Tuple[int, int], int] = {}
        self._last_pc: Optional[int] = None

    # ------------------------------------------------------------------
    def observe(self, pc: int) -> None:
        """Trace hook: called with each executed pc."""
        if pc in self._heads:
            self.block_counts[pc] = self.block_counts.get(pc, 0) + 1
        if self._last_pc is not None and pc != self._last_pc + 1:
            edge = (self._last_pc, pc)
            self.edge_counts[edge] = self.edge_counts.get(edge, 0) + 1
        self._last_pc = pc

    # ------------------------------------------------------------------
    def is_hot(self, head_pc: int) -> bool:
        return self.block_counts.get(head_pc, 0) >= self.config.hot_threshold

    def is_cold(self, head_pc: int) -> bool:
        return self.block_counts.get(head_pc, 0) < self.config.cold_threshold

    def hot_heads(self) -> Set[int]:
        return {
            pc
            for pc, count in self.block_counts.items()
            if count >= self.config.hot_threshold
        }

    def taken_count(self, branch_pc: int, target_pc: int) -> int:
        return self.edge_counts.get((branch_pc, target_pc), 0)

    def prefer_taken(self, branch_pc: int, target_pc: int) -> bool:
        """Did this branch go to ``target_pc`` more often than it fell
        through? Fall-through count is approximated as head count of the
        fall-through block minus the taken count."""
        taken = self.taken_count(branch_pc, target_pc)
        fall_head = branch_pc + 1
        fall = max(0, self.block_counts.get(fall_head, 0) - 0)
        # Fall-through executions of this branch == total branch executions
        # minus taken; total is approximated by the containing block's head
        # count, which we do not track per-branch. The edge count versus
        # fall-through head count comparison is a standard approximation.
        return taken > fall
