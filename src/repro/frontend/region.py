"""Superblock region formation (paper Section 6).

Starting from a hot block head, the former walks the most frequent
execution path: at each conditional branch it consults the profiler and
either keeps the branch as a *side exit* (fall-through continues the
trace) or, when the taken direction is hotter, inverts the branch
condition so the original target becomes the trace continuation and the
original fall-through becomes the side exit. Growth stops at a cold block,
at a back edge to the region head (a loop — the region ends with an
unconditional branch back to the head, letting the translated region
re-dispatch to itself), at an ``EXIT``, or at the length cap.

The formed :class:`~repro.ir.superblock.Superblock` contains *copies* of
the guest instructions (fresh uids) so optimization never mutates the
guest image.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.frontend.profiler import HotnessProfiler
from repro.frontend.program import GuestProgram
from repro.ir.instruction import Instruction, Opcode, branch
from repro.ir.superblock import Superblock

_INVERSE = {
    Opcode.BEQ: Opcode.BNE,
    Opcode.BNE: Opcode.BEQ,
    Opcode.BLT: Opcode.BGE,
    Opcode.BGE: Opcode.BLT,
}


@dataclass
class RegionFormationConfig:
    max_instructions: int = 200
    #: stop extending the trace across more than this many side exits
    max_side_exits: int = 16


class RegionFormer:
    """Builds superblocks along hot paths."""

    def __init__(
        self,
        program: GuestProgram,
        profiler: HotnessProfiler,
        config: Optional[RegionFormationConfig] = None,
    ) -> None:
        self.program = program
        self.profiler = profiler
        self.config = config or RegionFormationConfig()

    def form(self, head_pc: int) -> Superblock:
        """Form a superblock starting at ``head_pc``."""
        block = Superblock(entry_pc=head_pc, name=f"sb@{head_pc}")
        pc = head_pc
        side_exits = 0
        heads = self.program.block_heads()

        while len(block) < self.config.max_instructions:
            inst = self.program.at(pc)
            if inst.opcode is Opcode.EXIT:
                block.append(inst.copy())
                break
            if inst.opcode is Opcode.BR:
                if inst.target == head_pc:
                    block.append(inst.copy())  # loop back edge: close region
                    break
                pc = inst.target  # unconditional: follow, no side exit
                if self._should_stop(pc, head_pc):
                    block.append(branch(Opcode.BR, inst.target))
                    break
                continue
            if inst.is_branch:
                side_exits += 1
                follow_taken = self.profiler.prefer_taken(pc, inst.target)
                if follow_taken:
                    inverted = branch(
                        _INVERSE[inst.opcode], pc + 1, srcs=inst.srcs
                    )
                    inverted.guest_pc = pc
                    block.append(inverted)
                    next_pc = inst.target
                else:
                    block.append(inst.copy())
                    next_pc = pc + 1
                if next_pc == head_pc:
                    block.append(branch(Opcode.BR, head_pc))
                    break
                if (
                    side_exits >= self.config.max_side_exits
                    or self._should_stop(next_pc, head_pc)
                ):
                    block.append(branch(Opcode.BR, next_pc))
                    break
                pc = next_pc
                continue
            block.append(inst.copy())
            pc += 1
            if pc >= len(self.program):
                break
            if pc in heads and self._should_stop(pc, head_pc):
                block.append(branch(Opcode.BR, pc))
                break

        block.renumber_memory_ops()
        return block

    def _should_stop(self, pc: int, head_pc: int) -> bool:
        """Stop growth at cold blocks (only evaluated at block heads)."""
        if pc == head_pc:
            return False
        heads = self.program.block_heads()
        if pc not in heads:
            return False
        return self.profiler.is_cold(pc)
