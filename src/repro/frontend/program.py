"""Guest program images.

A :class:`GuestProgram` is a code image (pc -> instruction) plus a data
layout (named regions in guest memory) and optional profile hints. The pc
space is dense: instruction at pc ``i`` falls through to ``i + 1`` unless
it branches. ``EXIT`` terminates execution.

Workload generators (:mod:`repro.workloads`) build these images; the
interpreter executes them; the region former extracts superblocks from
them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Set, Tuple

from repro.ir.instruction import Instruction, Opcode


@dataclass
class GuestProgram:
    """Code image + data layout of one synthetic guest binary."""

    name: str
    instructions: List[Instruction] = field(default_factory=list)
    #: region name -> (start address, byte size)
    region_map: Dict[str, Tuple[int, int]] = field(default_factory=dict)
    entry_pc: int = 0
    #: profile hints: (mem_index_a, mem_index_b) -> runtime alias rate.
    #: Keyed per superblock entry pc by the caller when installed; the
    #: program-level hints here are global pairs used by generators.
    alias_hints: Dict[Tuple[int, int], float] = field(default_factory=dict)
    #: initial guest register values (register -> value)
    initial_registers: Dict[int, int] = field(default_factory=dict)
    #: loop-invariant pointer registers: register -> region name. The
    #: dynamic optimizer learns these from runtime register values at
    #: translation time; generators declare them directly.
    register_regions: Dict[int, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for pc, inst in enumerate(self.instructions):
            inst.guest_pc = pc

    def __len__(self) -> int:
        return len(self.instructions)

    def at(self, pc: int) -> Instruction:
        if not 0 <= pc < len(self.instructions):
            raise IndexError(f"guest pc {pc} out of range")
        return self.instructions[pc]

    # ------------------------------------------------------------------
    # Static structure
    # ------------------------------------------------------------------
    def branch_targets(self) -> Set[int]:
        targets = set()
        for inst in self.instructions:
            if inst.is_branch and inst.opcode is not Opcode.EXIT:
                if inst.target is not None:
                    targets.add(inst.target)
        return targets

    def block_heads(self) -> Set[int]:
        """Pcs that start a basic block."""
        heads = {self.entry_pc}
        heads |= self.branch_targets()
        for pc, inst in enumerate(self.instructions):
            if inst.is_branch and pc + 1 < len(self.instructions):
                heads.add(pc + 1)
        return heads

    def validate(self) -> None:
        """Check branch targets and memory layout sanity."""
        n = len(self.instructions)
        for pc, inst in enumerate(self.instructions):
            if inst.is_branch and inst.opcode is not Opcode.EXIT:
                if inst.target is None or not 0 <= inst.target < n:
                    raise ValueError(
                        f"pc {pc}: branch target {inst.target} out of range"
                    )
        spans = sorted(self.region_map.values())
        for (a_start, a_size), (b_start, b_size) in zip(spans, spans[1:]):
            if a_start + a_size > b_start:
                raise ValueError("overlapping data regions")

    def memory_size(self) -> int:
        """Smallest memory size containing all regions."""
        end = 0
        for start, size in self.region_map.values():
            end = max(end, start + size)
        return end

    def __repr__(self) -> str:
        return (
            f"<GuestProgram {self.name}: {len(self.instructions)} insts, "
            f"{len(self.region_map)} regions>"
        )
