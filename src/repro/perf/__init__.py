"""Performance-benchmark harness (``python -m repro perf``).

Times the simulation core's phases through the engine's
:class:`~repro.engine.instrumentation.Tracer` and writes a ``BENCH_*.json``
trajectory point at the repo root. See :mod:`repro.perf.harness` and
``docs/PERF.md``.
"""

from repro.perf.harness import (
    DEFAULT_BENCHMARKS,
    DEFAULT_SCHEMES,
    PerfConfig,
    check_regression,
    load_bench,
    run_perf,
    time_figures_cold,
    write_bench,
)

__all__ = [
    "DEFAULT_BENCHMARKS",
    "DEFAULT_SCHEMES",
    "PerfConfig",
    "check_regression",
    "load_bench",
    "run_perf",
    "time_figures_cold",
    "write_bench",
]
