"""Wall-clock perf harness over the instrumented simulation core.

Two measurements, both designed to be comparable across commits:

* **cells** — each (benchmark, scheme) cell simulated in-process with a
  fresh :class:`~repro.engine.instrumentation.Tracer`; the tracer's phase
  timings split the wall time into ``optimize`` (translation + scheduling
  + allocation), ``execute`` (translated-region VLIW simulation), and the
  derived ``interpret`` remainder of the ``run`` phase. Best-of-N repeats
  so one GC pause cannot poison a trajectory point.
* **figures_cold** — the end-to-end serial cold path (``figures
  --scale S --jobs 1 --no-cache``), the number the ROADMAP's perf
  acceptance criteria are written against.

The output JSON (``BENCH_pr2.json`` and successors at the repo root) is
self-describing: config, per-cell numbers, end-to-end numbers, and — when
``--baseline`` names a previous BENCH file — the embedded baseline plus
computed speedups.

Schema history:

* **1** — ``wall_s`` per cell is best-of-N; single-sample ``figures_cold``.
* **2** — every repeated measurement additionally records ``mean_s`` /
  ``std_s`` (population std over the N samples) next to the best-of
  ``wall_s``, ``figures_cold`` is repeated like the cells, per-cell
  timing-plan counters are summarized under ``plans``, and baseline
  comparisons add an ``execute_phase`` aggregate speedup. Schema-1 files
  remain readable as baselines: every added field is optional on the
  baseline side.
* **3** — cells record the optimizer's sub-phase timings under
  ``optimize_phases`` (``constraints`` / ``ddg`` / ``schedule`` /
  ``alloc`` / ``cache``; ``alloc`` is the allocator's share *inside*
  ``schedule``) and translation-cache counters under ``translate``
  (full-tier hits/misses/stores plus per-stage memo hits), and baseline
  comparisons add an ``optimize_phase`` aggregate speedup. The cell sweep
  intentionally shares the process-wide translation cache across repeats
  and cells — exactly what the figures pipeline sees — so best-of-N
  reflects the warm steady state. Schema-1/2 baselines remain readable:
  every added field is optional on the baseline side.
* **4** — cells record replay backend-tier counters under ``backends``
  (``interp``/``py``/``vec`` region-execution counts, vec kernel
  compiles and runtime fallbacks, replay artifact compiles and
  process-wide cache hits, and the derived ``vec_share``), and
  :func:`check_regression` turns the baseline comparison into a hard CI
  gate (``perf --fail-below``) over the ``execute_phase`` and
  ``total_cells`` aggregate speedups. Schema-1/2/3 baselines remain
  readable: every added field is optional on the baseline side.
* **5** — optional ``serve_load`` section (``perf --serve-load``,
  :func:`measure_serve_load`): the same job set timed three ways —
  cold one-process-per-job CLI (``python -m repro run`` subprocesses),
  cold first-touch batches against a freshly spawned ``repro serve``
  daemon, and warm repeat batches against the same daemon (memo/cache
  hits) — each with throughput + p50/p99 latency, plus the derived
  ``warm_vs_cli`` / ``warm_vs_cold_server`` throughput ratios. Earlier
  baselines remain readable: the section is optional on both sides.
* **6** — noise hardening + the ``batch`` replay tier. Per-cell
  ``phases`` become per-phase **medians** across the ``--repeats``
  samples (best-of-N ``wall_s`` and its ``mean_s``/``std_s`` stay for
  schema-1/2 continuity), and every cell adds a ``spread`` section with
  per-phase ``mean_s``/``std_s``/``median_s`` so the noisy-box variance
  documented in docs/PERF.md is visible in the JSON instead of
  threatening the ``--fail-below`` gate. ``backends`` adds the batch
  tier: ``batch`` (per-iteration execution count), ``batch_iterations``
  / ``batch_compiles`` / ``batch_trims``, the derived ``batch_share``,
  and the process-wide ``batch_flavor`` ("numpy" when the optional
  ``[perf]`` extra is importable, else "pure"); the payload top level
  records ``batch_flavor`` too. An optional ``batch_differential``
  section (``perf --batch-differential SCALE``,
  :func:`measure_batch_differential`) measures the batch tier against
  its own kill switch — the same cells, same process, same day, with
  batching on vs ``SMARQ_BATCH_WIDTH=0`` — so the tier's execute-phase
  speedup is not confounded with the machine drift that a
  cross-BENCH-file comparison inevitably carries. Schema-1..5
  baselines remain readable: every added field is optional on the
  baseline side.
"""

from __future__ import annotations

import io
import json
import platform
import time
from contextlib import redirect_stdout
from dataclasses import dataclass, field
from typing import Dict, List, Optional

BENCH_SCHEMA_VERSION = 6

#: three representative workloads: regular streams (swim), small hot loop
#: with heavy aliasing (art), pointer-chasing stores (equake)
DEFAULT_BENCHMARKS = ("swim", "art", "equake")
#: three hardware families: precise queue, imprecise ALAT, no hardware
DEFAULT_SCHEMES = ("smarq", "itanium", "none")


@dataclass
class PerfConfig:
    benchmarks: List[str] = field(
        default_factory=lambda: list(DEFAULT_BENCHMARKS)
    )
    schemes: List[str] = field(default_factory=lambda: list(DEFAULT_SCHEMES))
    scale: float = 0.1
    hot_threshold: int = 20
    repeats: int = 3
    #: also time the end-to-end serial cold `figures` run at this scale
    figures_scale: Optional[float] = 0.1


def _time_cell(
    benchmark: str, scheme: str, scale: float, hot_threshold: int
) -> Dict[str, object]:
    """One in-process simulation of a cell, fully instrumented."""
    from repro.engine.instrumentation import Tracer
    from repro.frontend.profiler import ProfilerConfig
    from repro.sim.dbt import DbtSystem
    from repro.workloads import make_benchmark

    tracer = Tracer()
    program = make_benchmark(benchmark, scale=scale)
    system = DbtSystem(
        program,
        scheme,
        profiler_config=ProfilerConfig(hot_threshold=hot_threshold),
        tracer=tracer,
    )
    start = time.perf_counter()
    report = system.run()
    wall = time.perf_counter() - start

    timings = dict(tracer.timings)
    run_s = timings.get("run", wall)
    optimize_s = timings.get("optimize", 0.0)
    execute_s = timings.get("execute", 0.0)
    return {
        "wall_s": wall,
        "phases": {
            "run": run_s,
            "optimize": optimize_s,
            "execute": execute_s,
            # interpretation has no explicit tracer phase: it is the DBT
            # loop's remainder once translation and region execution are
            # subtracted out
            "interpret_derived": max(0.0, run_s - optimize_s - execute_s),
        },
        # sub-phases of optimize; ``alloc`` is the allocator's share of
        # ``schedule``, not an additional term
        "optimize_phases": {
            "constraints": timings.get("optimize.constraints", 0.0),
            "ddg": timings.get("optimize.ddg", 0.0),
            "schedule": timings.get("optimize.schedule", 0.0),
            "alloc": timings.get("optimize.alloc", 0.0),
            "cache": timings.get("optimize.cache", 0.0),
        },
        "counters": dict(tracer.counters),
        "report": {
            "guest_instructions": report.guest_instructions,
            "total_cycles": report.total_cycles,
            "translations": report.translations,
            "region_commits": report.region_commits,
            "alias_exceptions": report.alias_exceptions,
        },
    }


def _spread(samples: List[float]) -> Dict[str, float]:
    """Mean and population standard deviation of repeated wall times."""
    mean = sum(samples) / len(samples)
    var = sum((s - mean) ** 2 for s in samples) / len(samples)
    return {"mean_s": mean, "std_s": var**0.5}


def _median(samples: List[float]) -> float:
    ordered = sorted(samples)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def _translate_summary(counters: Dict[str, int]) -> Dict[str, object]:
    """Translation-cache counters of one cell, plus derived hit rates."""
    hits = counters.get("translate.cache_hits", 0)
    misses = counters.get("translate.cache_misses", 0)
    lookups = hits + misses
    summary: Dict[str, object] = {
        "hits": hits,
        "misses": misses,
        "stores": counters.get("translate.cache_stores", 0),
        "hit_rate": (hits / lookups) if lookups else 0.0,
    }
    for stage in ("elim", "deps", "ddg", "prep"):
        summary[f"{stage}_hits"] = counters.get(f"translate.{stage}_hits", 0)
        summary[f"{stage}_misses"] = counters.get(
            f"translate.{stage}_misses", 0
        )
    return summary


def _plan_summary(counters: Dict[str, int]) -> Dict[str, object]:
    """Timing-plan counters of one cell, plus the derived hit rate."""
    hits = counters.get("vliw.plan_hits", 0)
    misses = counters.get("vliw.plan_misses", 0)
    lookups = hits + misses
    return {
        "hits": hits,
        "misses": misses,
        "compiles": counters.get("vliw.plan_compiles", 0),
        "invalidations": counters.get("vliw.plan_invalidations", 0),
        "replay_compiles": counters.get("vliw.replay_compiles", 0),
        "hit_rate": (hits / lookups) if lookups else 0.0,
    }


def _backend_summary(counters: Dict[str, int]) -> Dict[str, object]:
    """Replay backend-tier counters of one cell, plus derived shares."""
    from repro.sim.replay_backends import batch_flavor

    interp = counters.get("vliw.backend_interp", 0)
    py = counters.get("vliw.backend_py", 0)
    vec = counters.get("vliw.backend_vec", 0)
    batch = counters.get("vliw.backend_batch", 0)
    total = interp + py + vec + batch
    return {
        "interp": interp,
        "py": py,
        "vec": vec,
        "batch": batch,
        "vec_compiles": counters.get("vliw.vec_compiles", 0),
        "vec_fallbacks": counters.get("vliw.vec_fallbacks", 0),
        "batch_compiles": counters.get("vliw.batch_compiles", 0),
        "batch_iterations": counters.get("vliw.batch_iterations", 0),
        "batch_trims": counters.get("vliw.batch_trims", 0),
        "batch_flavor": batch_flavor(),
        "replay_compiles": counters.get("vliw.replay_compiles", 0),
        "replay_cache_hits": counters.get("vliw.replay_cache_hits", 0),
        "vec_share": (vec / total) if total else 0.0,
        "batch_share": (batch / total) if total else 0.0,
    }


def time_figures_cold(scale: float = 0.1) -> Dict[str, float]:
    """Wall time of the serial cold figures path, in-process.

    Equivalent to ``python -m repro figures --scale S --jobs 1
    --no-cache`` minus interpreter start-up, which would only add noise to
    a cross-commit comparison.
    """
    from repro.cli import main

    sink = io.StringIO()
    start = time.perf_counter()
    with redirect_stdout(sink):
        rc = main(
            ["figures", "--scale", str(scale), "--jobs", "1", "--no-cache"]
        )
    wall = time.perf_counter() - start
    if rc != 0:  # pragma: no cover - defensive
        raise RuntimeError(f"figures run failed with exit code {rc}")
    return {"scale": scale, "jobs": 1, "wall_s": wall}


def measure_serve_load(
    scale: float = 0.05,
    benchmarks: Optional[List[str]] = None,
    schemes: Optional[List[str]] = None,
    warm_batches: int = 3,
) -> Dict[str, object]:
    """Time one job set cold-CLI vs cold-server vs warm-server.

    The job set is the ``benchmarks x schemes`` grid at ``scale``. The
    cold CLI leg runs each job as its own ``python -m repro run``
    subprocess — interpreter start-up, import, simulate, exit — which is
    what service mode exists to amortize. The server legs drive a
    freshly spawned daemon (private cache dir, so nothing is pre-warmed)
    through the load generator: one cold first-touch batch, then
    ``warm_batches`` repeats of the same batch served from the memo.
    """
    import os
    import subprocess
    import sys
    import tempfile
    from pathlib import Path

    import repro
    from repro.serve import LoadConfig, run_load, spawned_server

    benchmarks = list(benchmarks or DEFAULT_BENCHMARKS)
    schemes = list(schemes or DEFAULT_SCHEMES)
    jobs = [(b, s) for b in benchmarks for s in schemes]

    env = os.environ.copy()
    src_root = str(Path(repro.__file__).resolve().parent.parent)
    env["PYTHONPATH"] = src_root + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    start = time.perf_counter()
    for benchmark, scheme in jobs:
        subprocess.run(
            [
                sys.executable, "-m", "repro", "run", benchmark,
                "--scheme", scheme, "--scale", str(scale),
            ],
            check=True,
            env=env,
            stdout=subprocess.DEVNULL,
        )
    cli_wall = time.perf_counter() - start
    cli_cold = {
        "jobs": len(jobs),
        "wall_s": cli_wall,
        "throughput_jps": len(jobs) / cli_wall if cli_wall else 0.0,
    }

    base = LoadConfig(
        batch_size=len(jobs),
        clients=1,
        scale=scale,
        benchmarks=benchmarks,
        schemes=schemes,
    )
    with tempfile.TemporaryDirectory() as cache_dir:
        with spawned_server(jobs=1, cache_dir=Path(cache_dir)) as address:
            # One warm-mix batch is the repeat batch's first touch: all
            # misses, and exactly the specs the warm leg then repeats —
            # so the warm leg below is served purely from the memo.
            cold_cfg = LoadConfig(**{**vars(base), "mix": "warm", "batches": 1})
            server_cold = run_load(address, cold_cfg)
            warm_cfg = LoadConfig(
                **{**vars(base), "mix": "warm", "batches": warm_batches}
            )
            server_warm = run_load(address, warm_cfg)

    def _trim(payload: Dict[str, object]) -> Dict[str, object]:
        keep = (
            "mix", "batches", "batch_size", "clients", "jobs_total",
            "completed", "failed", "wall_s", "throughput_jps",
            "p50_ms", "p99_ms", "max_ms", "mean_ms",
        )
        return {k: payload[k] for k in keep}

    section: Dict[str, object] = {
        "scale": scale,
        "benchmarks": benchmarks,
        "schemes": schemes,
        "cli_cold": cli_cold,
        "server_cold": {**_trim(server_cold), "mix": "first-touch"},
        "server_warm": _trim(server_warm),
    }
    if cli_cold["throughput_jps"]:
        section["warm_vs_cli"] = (
            server_warm["throughput_jps"] / cli_cold["throughput_jps"]
        )
    if server_cold["throughput_jps"]:
        section["warm_vs_cold_server"] = (
            server_warm["throughput_jps"] / server_cold["throughput_jps"]
        )
    return section


#: the benchmarks whose execute phase is dominated by one hot self-loop
#: — the shape the batch tier exists for, and the set the differential
#: section reports a dedicated aggregate over
LOOP_DOMINATED_BENCHMARKS = ("equake", "pwalk", "pchase")


def measure_batch_differential(
    benchmarks: Optional[List[str]] = None,
    scheme: str = "smarq",
    scale: float = 1.0,
    repeats: int = 3,
    hot_threshold: int = 20,
) -> Dict[str, object]:
    """Kill-switch differential for the batch replay tier.

    A cross-BENCH-file execute-phase ratio confounds the batch tier's
    effect with everything else that changed between the two files —
    most of all the box they were measured on. This section removes the
    machine from the equation: each cell is simulated ``repeats`` times
    with batching live and ``repeats`` times under ``SMARQ_BATCH_WIDTH=0``
    (the kill switch, which restores the pre-batch interp→py→vec
    promotion ladder), the two legs interleaved in one process on one
    day. The ratio of median execute-phase times is the tier's speedup
    with everything else held fixed.
    """
    import os

    benchmarks = list(benchmarks or LOOP_DOMINATED_BENCHMARKS)
    repeats = max(1, repeats)
    env_key = "SMARQ_BATCH_WIDTH"
    prior = os.environ.get(env_key)
    cells: Dict[str, Dict[str, object]] = {}
    try:
        for benchmark in benchmarks:
            legs: Dict[str, List[Dict[str, object]]] = {"off": [], "on": []}
            for _ in range(repeats):
                # Interleaved on/off pairs: slow drift within the run
                # (thermal, background load) hits both legs equally.
                for mode in ("off", "on"):
                    if mode == "off":
                        os.environ[env_key] = "0"
                    elif prior is None:
                        os.environ.pop(env_key, None)
                    else:
                        os.environ[env_key] = prior
                    legs[mode].append(
                        _time_cell(benchmark, scheme, scale, hot_threshold)
                    )
            cell: Dict[str, object] = {}
            for mode, samples in legs.items():
                execs = [s["phases"]["execute"] for s in samples]
                walls = [s["wall_s"] for s in samples]
                best = min(samples, key=lambda s: s["phases"]["execute"])
                cell[mode] = {
                    "execute_s": _median(execs),
                    "wall_s": _median(walls),
                    "spread": {"execute_s": _spread(execs)},
                    "backends": _backend_summary(best["counters"]),
                }
            off_exec = cell["off"]["execute_s"]
            on_exec = cell["on"]["execute_s"]
            if on_exec:
                cell["execute_ratio"] = off_exec / on_exec
            cells[f"{benchmark}/{scheme}"] = cell
    finally:
        if prior is None:
            os.environ.pop(env_key, None)
        else:
            os.environ[env_key] = prior

    def _aggregate(names: List[str]) -> Optional[float]:
        off = sum(
            cells[f"{b}/{scheme}"]["off"]["execute_s"] for b in names
        )
        on = sum(cells[f"{b}/{scheme}"]["on"]["execute_s"] for b in names)
        return (off / on) if on else None

    section: Dict[str, object] = {
        "scale": scale,
        "scheme": scheme,
        "repeats": repeats,
        "benchmarks": benchmarks,
        "cells": cells,
        "aggregate_execute_ratio": _aggregate(benchmarks),
    }
    loop_dominated = [
        b for b in benchmarks if b in LOOP_DOMINATED_BENCHMARKS
    ]
    if loop_dominated:
        section["loop_dominated_benchmarks"] = loop_dominated
        section["loop_dominated_execute_ratio"] = _aggregate(loop_dominated)
    return section


def run_perf(config: Optional[PerfConfig] = None) -> Dict[str, object]:
    """Measure every configured cell (plus the end-to-end figures path)."""
    config = config or PerfConfig()
    repeats = max(1, config.repeats)
    cells: Dict[str, Dict[str, object]] = {}
    for benchmark in config.benchmarks:
        for scheme in config.schemes:
            samples: List[Dict[str, object]] = [
                _time_cell(
                    benchmark, scheme, config.scale, config.hot_threshold
                )
                for _ in range(repeats)
            ]
            best = min(samples, key=lambda s: s["wall_s"])
            walls = [s["wall_s"] for s in samples]
            best.update(_spread(walls))
            # Noise hardening (schema 6): per-phase medians across the
            # repeats replace the single best sample's phases — a GC
            # pause or scheduler hiccup in one repeat no longer moves
            # the gated execute-phase aggregate — and ``spread`` makes
            # the remaining run-to-run variance visible per phase.
            phase_spread: Dict[str, Dict[str, float]] = {}
            medians: Dict[str, float] = {}
            for name in best["phases"]:
                vals = [s["phases"][name] for s in samples]
                med = _median(vals)
                medians[name] = med
                phase_spread[name] = {**_spread(vals), "median_s": med}
            best["phases"] = medians
            best["spread"] = {
                "wall_s": {**_spread(walls), "median_s": _median(walls)},
                "phases": phase_spread,
            }
            best["plans"] = _plan_summary(best["counters"])
            best["translate"] = _translate_summary(best["counters"])
            best["backends"] = _backend_summary(best["counters"])
            cells[f"{benchmark}/{scheme}"] = best

    from repro.sim.replay_backends import batch_flavor

    payload: Dict[str, object] = {
        "bench_schema": BENCH_SCHEMA_VERSION,
        "created_unix": int(time.time()),
        "python": platform.python_version(),
        "batch_flavor": batch_flavor(),
        "config": {
            "benchmarks": list(config.benchmarks),
            "schemes": list(config.schemes),
            "scale": config.scale,
            "hot_threshold": config.hot_threshold,
            "repeats": config.repeats,
        },
        "cells": cells,
        "total_cell_wall_s": sum(c["wall_s"] for c in cells.values()),
    }
    if config.figures_scale is not None:
        fig_best: Optional[Dict[str, float]] = None
        fig_walls: List[float] = []
        for _ in range(repeats):
            sample = time_figures_cold(config.figures_scale)
            fig_walls.append(sample["wall_s"])
            if fig_best is None or sample["wall_s"] < fig_best["wall_s"]:
                fig_best = sample
        fig_best.update(_spread(fig_walls))
        fig_best["repeats"] = repeats
        payload["figures_cold"] = fig_best
    return payload


def attach_baseline(
    payload: Dict[str, object], baseline: Dict[str, object]
) -> None:
    """Embed a previous BENCH payload and compute speedups against it.

    Works against any schema version: schema-1 baselines lack
    ``mean_s``/``std_s``/``plans`` but carry everything the ratios here
    need (``wall_s``, per-cell ``phases``, ``figures_cold``).
    """
    payload["baseline"] = baseline
    speedups: Dict[str, float] = {}
    base_cells = baseline.get("cells", {})
    base_exec = this_exec = 0.0
    base_opt = this_opt = 0.0
    for key, cell in payload.get("cells", {}).items():
        base = base_cells.get(key)
        if base and cell["wall_s"] > 0:
            speedups[key] = base["wall_s"] / cell["wall_s"]
            base_exec += base.get("phases", {}).get("execute", 0.0)
            this_exec += cell.get("phases", {}).get("execute", 0.0)
            base_opt += base.get("phases", {}).get("optimize", 0.0)
            this_opt += cell.get("phases", {}).get("optimize", 0.0)
    summary: Dict[str, object] = {"cells": speedups}
    if base_exec and this_exec:
        # PR3's target metric: aggregate VLIW execute-phase time across
        # all compared cells
        summary["execute_phase"] = base_exec / this_exec
    if base_opt and this_opt:
        # the translation-cache target metric: aggregate optimize-phase
        # (translation) time across all compared cells
        summary["optimize_phase"] = base_opt / this_opt
    base_fig = baseline.get("figures_cold")
    this_fig = payload.get("figures_cold")
    if base_fig and this_fig and this_fig["wall_s"] > 0:
        summary["figures_cold"] = base_fig["wall_s"] / this_fig["wall_s"]
    base_total = baseline.get("total_cell_wall_s")
    this_total = payload.get("total_cell_wall_s")
    if base_total and this_total:
        summary["total_cells"] = base_total / this_total
    payload["speedup"] = summary


def check_regression(
    payload: Dict[str, object], threshold: float
) -> List[str]:
    """Speedup gates below ``threshold``, as printable failures.

    Gates the two aggregate trajectory metrics CI locks: the
    execute-phase speedup and the whole cell sweep. A gate that could
    not be computed (no ``--baseline``, or a baseline with no comparable
    cells) fails closed — a silent skip would read as a pass exactly
    when the comparison is most broken.
    """
    speedup = payload.get("speedup") or {}
    failures: List[str] = []
    for gate in ("execute_phase", "total_cells"):
        value = speedup.get(gate)
        if value is None:
            failures.append(
                f"{gate}: not computed (baseline missing or incomparable)"
            )
        elif value < threshold:
            failures.append(f"{gate}: {value:.2f}x < {threshold:.2f}x")
    return failures


def write_bench(path: str, payload: Dict[str, object]) -> None:
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_bench(path: str) -> Dict[str, object]:
    with open(path) as fh:
        return json.load(fh)


def render_summary(payload: Dict[str, object]) -> str:
    """Human-readable one-screen summary of a BENCH payload."""
    lines = ["Perf harness results", "===================="]
    fig = payload.get("figures_cold")
    if fig:
        spread = (
            f"  (mean {fig['mean_s']:.2f}s ± {fig['std_s']:.2f}s)"
            if "mean_s" in fig
            else ""
        )
        lines.append(
            f"figures cold (scale {fig['scale']}, serial) : "
            f"{fig['wall_s']:.2f}s{spread}"
        )
    lines.append(
        f"cell sweep total                    : "
        f"{payload['total_cell_wall_s']:.2f}s"
    )
    for key in sorted(payload["cells"]):
        cell = payload["cells"][key]
        p = cell["phases"]
        spread = (
            f"  ±{cell['std_s']:.3f}s" if "std_s" in cell else ""
        )
        plans = cell.get("plans")
        plan_note = (
            f", plan hits {plans['hit_rate']:.0%}" if plans else ""
        )
        translate = cell.get("translate")
        tc_note = (
            f", tc hits {translate['hit_rate']:.0%}"
            if translate and (translate["hits"] or translate["misses"])
            else ""
        )
        backends = cell.get("backends")
        be_note = (
            f", vec {backends['vec_share']:.0%}"
            if backends and backends["vec_share"]
            else ""
        )
        if backends and backends.get("batch_share"):
            be_note += (
                f", batch {backends['batch_share']:.0%}"
                f" ({backends.get('batch_flavor', 'pure')})"
            )
        lines.append(
            f"  {key:<18} {cell['wall_s']:7.3f}s{spread}  "
            f"(opt {p['optimize']:.3f}s, exec {p['execute']:.3f}s, "
            f"interp {p['interpret_derived']:.3f}s"
            f"{plan_note}{tc_note}{be_note})"
        )
    serve_load = payload.get("serve_load")
    if serve_load:
        cli = serve_load["cli_cold"]
        cold = serve_load["server_cold"]
        warm = serve_load["server_warm"]
        lines.append(
            f"serve: cold CLI                     : "
            f"{cli['throughput_jps']:.2f} jobs/s ({cli['jobs']} procs)"
        )
        lines.append(
            f"serve: cold server (first touch)    : "
            f"{cold['throughput_jps']:.2f} jobs/s "
            f"(p99 {cold['p99_ms']:.0f}ms)"
        )
        lines.append(
            f"serve: warm server                  : "
            f"{warm['throughput_jps']:.2f} jobs/s "
            f"(p99 {warm['p99_ms']:.1f}ms)"
        )
        if "warm_vs_cli" in serve_load:
            lines.append(
                f"serve: warm vs cold CLI             : "
                f"{serve_load['warm_vs_cli']:.1f}x throughput"
            )
    diff = payload.get("batch_differential")
    if diff:
        lines.append(
            f"batch kill-switch differential (scale {diff['scale']}, "
            f"{diff['scheme']}):"
        )
        for key in sorted(diff["cells"]):
            cell = diff["cells"][key]
            share = cell["on"]["backends"].get("batch_share", 0.0)
            lines.append(
                f"  {key:<18} exec {cell['off']['execute_s']:.3f}s off -> "
                f"{cell['on']['execute_s']:.3f}s on  "
                f"({cell.get('execute_ratio', 0.0):.2f}x, "
                f"batch share {share:.0%})"
            )
        agg = diff.get("aggregate_execute_ratio")
        if agg:
            lines.append(f"  aggregate execute   : {agg:.2f}x")
        loop_agg = diff.get("loop_dominated_execute_ratio")
        if loop_agg:
            lines.append(f"  loop-dominated agg  : {loop_agg:.2f}x")
    speedup = payload.get("speedup")
    if speedup:
        lines.append("speedup vs baseline:")
        if "figures_cold" in speedup:
            lines.append(
                f"  figures cold : {speedup['figures_cold']:.2f}x"
            )
        if "execute_phase" in speedup:
            lines.append(
                f"  execute phase: {speedup['execute_phase']:.2f}x"
            )
        if "optimize_phase" in speedup:
            lines.append(
                f"  optimize phase: {speedup['optimize_phase']:.2f}x"
            )
        if "total_cells" in speedup:
            lines.append(
                f"  cell sweep   : {speedup['total_cells']:.2f}x"
            )
    return "\n".join(lines)
