"""Intermediate representation used by the dynamic optimizer.

The IR is a flat, superblock-oriented instruction list. Memory operations
carry the SMARQ annotations described in the paper (Section 3): an alias
register *offset*, a P (protection) bit and a C (check) bit. Two pseudo
instructions manage the alias register queue: ``ROTATE n`` advances the
queue's BASE pointer and ``AMOV off1, off2`` moves/cleans an access range.
"""

from repro.ir.instruction import (
    Instruction,
    Opcode,
    OperandError,
    amov,
    binop,
    branch,
    fbinop,
    load,
    mov,
    movi,
    nop,
    rotate,
    store,
)
from repro.ir.superblock import Superblock
from repro.ir.printer import format_instruction, format_superblock

__all__ = [
    "Instruction",
    "Opcode",
    "OperandError",
    "Superblock",
    "amov",
    "binop",
    "branch",
    "fbinop",
    "format_instruction",
    "format_superblock",
    "load",
    "mov",
    "movi",
    "nop",
    "rotate",
    "store",
]
