"""Textual rendering of IR, matching the paper's listing style.

The paper annotates each memory operation with three columns: the alias
register offset, the P/C bits, and the HW action (``set ARx`` /
``check ARy..``). :func:`format_superblock` reproduces that layout so worked
examples from the paper can be eyeballed against our output.
"""

from __future__ import annotations

from typing import List, Optional

from repro.ir.instruction import Instruction, Opcode


def _mem_ref(inst: Instruction) -> str:
    if inst.disp > 0:
        return f"[r{inst.base}+{inst.disp}]"
    if inst.disp < 0:
        return f"[r{inst.base}{inst.disp}]"
    return f"[r{inst.base}]"


def format_instruction(inst: Instruction) -> str:
    """One-line assembly-ish rendering of an instruction."""
    op = inst.opcode
    if op is Opcode.LD:
        return f"r{inst.dest} = ld{inst.size} {_mem_ref(inst)}"
    if op is Opcode.ST:
        return f"st{inst.size} {_mem_ref(inst)} = r{inst.srcs[0]}"
    if op is Opcode.MOVI:
        return f"r{inst.dest} = {inst.imm}"
    if op is Opcode.MOV:
        return f"r{inst.dest} = r{inst.srcs[0]}"
    if op is Opcode.ROTATE:
        return f"rotate {inst.rotate_by}"
    if op is Opcode.AMOV:
        return f"amov {inst.amov_src}, {inst.amov_dst}"
    if op is Opcode.NOP:
        return "nop"
    if op is Opcode.EXIT:
        return f"exit {inst.target}"
    if inst.is_branch:
        regs = ", ".join(f"r{r}" for r in inst.srcs)
        sep = " " if regs else ""
        return f"{op.value} {regs}{sep}-> {inst.target:#x}"
    if inst.dest is not None and len(inst.srcs) >= 2:
        args = ", ".join(f"r{r}" for r in inst.srcs)
        return f"r{inst.dest} = {op.value} {args}"
    if inst.dest is not None and inst.srcs:
        return f"r{inst.dest} = {op.value} r{inst.srcs[0]}"
    return op.value


def _bits(inst: Instruction) -> str:
    p = "P" if inst.p_bit else ""
    c = "C" if inst.c_bit else ""
    return (p + c) or "-"


def format_annotated(inst: Instruction) -> str:
    """Render with the paper's offset / P-C columns for memory operations."""
    body = format_instruction(inst)
    if not (inst.is_mem or inst.is_queue_op):
        return f"{body:<34}"
    offset = "" if inst.ar_offset is None else str(inst.ar_offset)
    return f"{body:<34} {offset:>3}  {_bits(inst):<2}"


def format_superblock(
    block, title: Optional[str] = None, annotated: bool = True
) -> str:
    """Multi-line listing of a superblock.

    ``block`` is any iterable of instructions (typically a
    :class:`repro.ir.Superblock`).
    """
    lines: List[str] = []
    if title:
        lines.append(f"; {title}")
    for i, inst in enumerate(block):
        text = format_annotated(inst) if annotated else format_instruction(inst)
        lines.append(f"{i:>3}: {text.rstrip()}")
    return "\n".join(lines)
