"""Superblock regions.

The paper's optimizer (like the Transmeta/Efficeon-style systems it compares
against) forms *superblocks*: single-entry, multiple-exit straight-line
regions along hot execution paths. Conditional branches inside the region
become *side exits*; the fall-through continues the region.

A :class:`Superblock` owns an instruction list plus metadata the rest of the
pipeline needs: the entry guest pc, exit pcs, and the numbering of memory
operations in original program order (``mem_index``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional

from repro.ir.instruction import Instruction


@dataclass
class Superblock:
    """A single-entry multiple-exit straight-line optimization region."""

    entry_pc: int = 0
    instructions: List[Instruction] = field(default_factory=list)
    name: str = ""

    def __post_init__(self) -> None:
        self.renumber_memory_ops()

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __getitem__(self, idx: int) -> Instruction:
        return self.instructions[idx]

    def append(self, inst: Instruction) -> Instruction:
        self.instructions.append(inst)
        if inst.is_mem:
            inst.mem_index = self._count_mem() - 1
        return inst

    def extend(self, insts: Iterable[Instruction]) -> None:
        for inst in insts:
            self.append(inst)

    # ------------------------------------------------------------------
    # Memory-operation views
    # ------------------------------------------------------------------
    def memory_ops(self) -> List[Instruction]:
        """Memory operations in current (possibly scheduled) order."""
        return [inst for inst in self.instructions if inst.is_mem]

    def memory_ops_in_program_order(self) -> List[Instruction]:
        """Memory operations sorted by their original program order."""
        ops = self.memory_ops()
        if any(op.mem_index is None for op in ops):
            raise ValueError("superblock has unnumbered memory operations")
        return sorted(ops, key=lambda op: op.mem_index)

    def renumber_memory_ops(self) -> None:
        """Assign ``mem_index`` by current position.

        Call only while the block is still in original program order (i.e.
        before scheduling); the indices define that order afterwards.
        """
        idx = 0
        for inst in self.instructions:
            if inst.is_mem:
                inst.mem_index = idx
                idx += 1

    def _count_mem(self) -> int:
        return sum(1 for inst in self.instructions if inst.is_mem)

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    def side_exits(self) -> List[Instruction]:
        """Branches that may leave the region before its end."""
        return [inst for inst in self.instructions[:-1] if inst.is_branch]

    def copy(self, name: Optional[str] = None) -> "Superblock":
        """Deep-copy the region (fresh instruction uids, same mem indices)."""
        block = Superblock(entry_pc=self.entry_pc, name=name or self.name)
        block.instructions = [inst.copy() for inst in self.instructions]
        return block

    def position_of(self, inst: Instruction) -> int:
        """Index of ``inst`` in the current order (identity match)."""
        for i, candidate in enumerate(self.instructions):
            if candidate is inst:
                return i
        raise ValueError(f"instruction {inst!r} not in superblock")

    def validate(self) -> None:
        """Structural sanity checks; raises ``ValueError`` on violation."""
        mem_indices = [i.mem_index for i in self.instructions if i.is_mem]
        if len(set(mem_indices)) != len(mem_indices):
            raise ValueError("duplicate mem_index in superblock")
        if any(idx is None for idx in mem_indices):
            raise ValueError("memory operation without mem_index")

    def __repr__(self) -> str:
        label = self.name or f"sb@{self.entry_pc:#x}"
        return f"<Superblock {label}: {len(self.instructions)} insts>"
