"""IR instructions.

The optimizer's IR is register based. There is a single flat register file
(``r0`` .. ``rN``); values may be ints or floats. Memory operations address
guest memory through ``base register + displacement`` with a byte ``size``.

Every instruction gets a unique ``uid`` (allocation order) and, for memory
operations, a ``mem_index`` recording its position among memory operations in
the *original program order* — the order the paper's DEPENDENCE rule and the
program-order baseline allocation are defined against.

SMARQ annotations live directly on the instruction:

``p_bit``
    The operation sets (protects) an alias register with its access range.
``c_bit``
    The operation checks earlier-set alias registers per the paper's
    ORDERED-ALIAS-DETECTION-RULE.
``ar_offset``
    Alias register number relative to the queue BASE at this operation's
    execution. ``None`` until allocation assigns one.
``ar_order``
    Alias register number relative to BASE 0 (``order = base + offset``);
    recorded by the allocator for validation and statistics.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple


class OperandError(ValueError):
    """Raised when an instruction is constructed with invalid operands."""


class Opcode(enum.Enum):
    """IR opcodes.

    Arithmetic opcodes carry their functional-unit class in the timing
    model (:mod:`repro.sched.machine`); the enum itself is purely symbolic.
    """

    # Memory
    LD = "ld"
    ST = "st"
    # Integer ALU
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SHL = "shl"
    SHR = "shr"
    MOV = "mov"
    MOVI = "movi"
    CMP = "cmp"
    # Floating point
    FADD = "fadd"
    FSUB = "fsub"
    FMUL = "fmul"
    FDIV = "fdiv"
    FMA = "fma"
    # Control
    BR = "br"
    BEQ = "beq"
    BNE = "bne"
    BLT = "blt"
    BGE = "bge"
    EXIT = "exit"
    # Pseudo / queue management
    NOP = "nop"
    ROTATE = "rotate"
    AMOV = "amov"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Opcode.{self.name}"

    # Enum members compare by identity, so the id-based hash is
    # equivalent to the default name-string hash — but it is a C-level
    # slot instead of a Python call, and opcode-keyed dict/set lookups
    # are all over the scheduler's and interpreter's hot paths.
    __hash__ = object.__hash__


#: Opcodes that read or write guest memory.
MEMORY_OPCODES = frozenset({Opcode.LD, Opcode.ST})

#: Opcodes that end a superblock or transfer control out of it.
BRANCH_OPCODES = frozenset(
    {Opcode.BR, Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE, Opcode.EXIT}
)

#: Opcodes inserted by the SMARQ allocator rather than the translator.
QUEUE_OPCODES = frozenset({Opcode.ROTATE, Opcode.AMOV})

_FLOAT_OPCODES = frozenset(
    {Opcode.FADD, Opcode.FSUB, Opcode.FMUL, Opcode.FDIV, Opcode.FMA}
)

_next_uid_value = 0


def _next_uid() -> int:
    global _next_uid_value
    uid = _next_uid_value
    _next_uid_value = uid + 1
    return uid


def reserve_uids(max_uid: int) -> None:
    """Advance the uid counter past ``max_uid``.

    Deserialized instructions (the translation cache's persistent tier)
    carry uids allocated by another process; reserving their range keeps
    every *future* allocation from colliding with them, so uid-keyed
    per-region indexes never mix two instructions under one key.
    """
    global _next_uid_value
    if max_uid >= _next_uid_value:
        _next_uid_value = max_uid + 1


def uid_watermark() -> int:
    """Highest uid allocated so far.

    The translation cache stamps every stored blob with this value:
    eliminated-but-still-referenced instructions can carry uids above the
    surviving block's maximum, so scanning the blob itself would
    under-reserve.
    """
    return _next_uid_value - 1


@dataclass
class Instruction:
    """A single IR instruction.

    Register operands are small integers (register numbers). ``dest`` is
    ``None`` for instructions that do not write a register. Memory operands
    are expressed as ``(base, disp, size)``.
    """

    opcode: Opcode
    dest: Optional[int] = None
    srcs: Tuple[int, ...] = ()
    imm: Optional[int] = None
    base: Optional[int] = None
    disp: int = 0
    size: int = 8
    target: Optional[int] = None  # branch target (guest pc) or exit id

    # Bookkeeping
    uid: int = field(default_factory=_next_uid)
    mem_index: Optional[int] = None  # original-program order among memory ops
    guest_pc: Optional[int] = None

    # SMARQ annotations
    p_bit: bool = False
    c_bit: bool = False
    ar_offset: Optional[int] = None
    ar_order: Optional[int] = None
    #: Efficeon-style annotation: bit-mask of alias registers this
    #: operation must check (set by the bitmask allocator, not SMARQ)
    ar_mask: Optional[int] = None

    # ROTATE amount or AMOV operands
    rotate_by: int = 0
    amov_src: Optional[int] = None  # offset1
    amov_dst: Optional[int] = None  # offset2

    # Set by the speculative optimizer when this op was produced by an
    # elimination (used for accounting and re-optimization decisions).
    speculative: bool = False

    def __post_init__(self) -> None:
        opcode = self.opcode
        if opcode in MEMORY_OPCODES:
            if self.base is None:
                raise OperandError(f"{opcode} requires a base register")
            if self.size <= 0:
                raise OperandError("memory access size must be positive")
        if opcode is Opcode.ROTATE and self.rotate_by < 0:
            raise OperandError("rotate amount must be non-negative")
        if opcode is Opcode.AMOV:
            if self.amov_src is None or self.amov_dst is None:
                raise OperandError("AMOV requires source and dest offsets")
        # Classification flags are plain attributes, not properties: the
        # scheduler and DDG builder read them per candidate pair, and an
        # attribute load is an order of magnitude cheaper than a property
        # call. The opcode never changes after construction.
        self.is_load = opcode is Opcode.LD
        self.is_store = opcode is Opcode.ST
        self.is_mem = opcode in MEMORY_OPCODES
        self.is_branch = opcode in BRANCH_OPCODES
        self.is_float = opcode in _FLOAT_OPCODES
        self.is_queue_op = opcode in QUEUE_OPCODES

    # ------------------------------------------------------------------
    # Register use/def sets (for dependence building)
    # ------------------------------------------------------------------
    def defs(self) -> Tuple[int, ...]:
        """Registers written by this instruction."""
        if self.dest is None:
            return ()
        return (self.dest,)

    def uses(self) -> Tuple[int, ...]:
        """Registers read by this instruction."""
        regs = list(self.srcs)
        if self.base is not None:
            regs.append(self.base)
        return tuple(regs)

    def copy(self) -> "Instruction":
        """Return a fresh copy with a new uid (annotations preserved)."""
        clone = Instruction(
            opcode=self.opcode,
            dest=self.dest,
            srcs=self.srcs,
            imm=self.imm,
            base=self.base,
            disp=self.disp,
            size=self.size,
            target=self.target,
            mem_index=self.mem_index,
            guest_pc=self.guest_pc,
            p_bit=self.p_bit,
            c_bit=self.c_bit,
            ar_offset=self.ar_offset,
            ar_order=self.ar_order,
            ar_mask=self.ar_mask,
            rotate_by=self.rotate_by,
            amov_src=self.amov_src,
            amov_dst=self.amov_dst,
            speculative=self.speculative,
        )
        return clone

    def __hash__(self) -> int:
        return self.uid

    def __eq__(self, other: object) -> bool:
        return self is other

    def __repr__(self) -> str:
        from repro.ir.printer import format_instruction

        return f"<I{self.uid} {format_instruction(self)}>"


# ----------------------------------------------------------------------
# Construction helpers — the public, readable way to build IR.
# ----------------------------------------------------------------------
def load(dest: int, base: int, disp: int = 0, size: int = 8) -> Instruction:
    """``dest = ld [base + disp]``."""
    return Instruction(Opcode.LD, dest=dest, base=base, disp=disp, size=size)


def store(base: int, src: int, disp: int = 0, size: int = 8) -> Instruction:
    """``st [base + disp] = src``."""
    return Instruction(Opcode.ST, srcs=(src,), base=base, disp=disp, size=size)


def binop(opcode: Opcode, dest: int, lhs: int, rhs: int) -> Instruction:
    """Integer two-source ALU operation."""
    return Instruction(opcode, dest=dest, srcs=(lhs, rhs))


def fbinop(opcode: Opcode, dest: int, lhs: int, rhs: int) -> Instruction:
    """Floating-point two-source operation."""
    if opcode not in _FLOAT_OPCODES:
        raise OperandError(f"{opcode} is not a floating-point opcode")
    return Instruction(opcode, dest=dest, srcs=(lhs, rhs))


def mov(dest: int, src: int) -> Instruction:
    """Register move."""
    return Instruction(Opcode.MOV, dest=dest, srcs=(src,))


def movi(dest: int, imm: int) -> Instruction:
    """Load immediate."""
    return Instruction(Opcode.MOVI, dest=dest, imm=imm)


def branch(opcode: Opcode, target: int, srcs: Tuple[int, ...] = ()) -> Instruction:
    """Conditional or unconditional branch to a guest pc / exit id."""
    if opcode not in BRANCH_OPCODES:
        raise OperandError(f"{opcode} is not a branch opcode")
    return Instruction(opcode, srcs=srcs, target=target)


def nop() -> Instruction:
    return Instruction(Opcode.NOP)


def rotate(amount: int) -> Instruction:
    """``ROTATE amount`` — advance the alias register queue BASE."""
    return Instruction(Opcode.ROTATE, rotate_by=amount)


def amov(src_offset: int, dst_offset: int) -> Instruction:
    """``AMOV src, dst`` — move (or clean, when src == dst) an access range."""
    return Instruction(Opcode.AMOV, amov_src=src_offset, amov_dst=dst_offset)
