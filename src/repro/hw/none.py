"""Null alias-detection hardware.

The paper's baseline ("without hardware alias detection support", Figure 15)
is a machine where the optimizer cannot speculate on memory ordering at all:
every may-alias dependence must be honoured by the scheduler. This model
exists so the simulator can be parameterized uniformly over schemes; all its
operations are no-ops, and asking it to perform a speculative check is a
programming error.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.exceptions import HardwareError
from repro.hw.ranges import AccessRange


@dataclass
class NoneStats:
    sets: int = 0
    checks: int = 0


class NoAliasHardware:
    """A machine with no alias registers."""

    num_registers = 0

    def __init__(self) -> None:
        self.stats = NoneStats()

    def set(self, offset: int, access: AccessRange, setter_mem_index=None) -> None:
        raise HardwareError("no alias registers: optimizer must not speculate")

    def check(self, offset: int, access: AccessRange, checker_mem_index=None) -> None:
        raise HardwareError("no alias registers: optimizer must not speculate")

    def rotate(self, amount: int) -> None:
        raise HardwareError("no alias registers: nothing to rotate")

    def amov(self, src_offset: int, dst_offset: int) -> None:
        raise HardwareError("no alias registers: nothing to move")

    def clear(self) -> None:
        pass

    def reset(self) -> None:
        pass

    def event_signature(self):
        """Timing-plan event counters (uniform hw-model API). All
        operations raise, so a successfully executing region's stream is
        always empty — trivially timing-transparent."""
        s = self.stats
        return (s.sets, s.checks)

    def __repr__(self) -> str:
        return "<NoAliasHardware>"
