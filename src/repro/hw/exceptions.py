"""Exceptions raised by the hardware models."""

from __future__ import annotations

from typing import Optional


class HardwareError(Exception):
    """Base class for hardware-model errors (misuse of the model)."""


class AliasException(Exception):
    """Raised when hardware detects a runtime memory alias.

    The runtime catches this, rolls the atomic region back, and triggers
    conservative re-optimization (paper Figure 1). ``setter_mem_index`` and
    ``checker_mem_index`` identify the two memory operations involved so the
    re-optimizer can add a must-alias dependence between them.
    """

    def __init__(
        self,
        message: str,
        setter_mem_index: Optional[int] = None,
        checker_mem_index: Optional[int] = None,
        false_positive: bool = False,
    ) -> None:
        super().__init__(message)
        self.setter_mem_index = setter_mem_index
        self.checker_mem_index = checker_mem_index
        #: Set by models that *know* the detection was a false positive
        #: (only the Itanium-like model, for accounting; real hardware
        #: cannot distinguish).
        self.false_positive = false_positive


class AliasRegisterOverflow(HardwareError):
    """An alias register offset referenced past the physical register count.

    SMARQ's allocator is designed to make this impossible (Section 5.3); the
    model raises it to catch allocator bugs and to support the overflow
    ablation study.
    """
