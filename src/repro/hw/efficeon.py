"""Efficeon-like bit-mask alias register file (paper Section 2.2).

Each checking memory operation carries a bit-mask naming exactly the alias
registers it must check. Detection is therefore precise (no false positives)
and store-store aliases are detectable — but the mask lives in the
instruction encoding, so the register count is hard-capped (15 on Efficeon).

SMARQ's experiments model the capacity effect with a 16-entry *ordered*
queue (``SMARQ16``); this module models the Efficeon mechanism itself for
Table 1 and the scheme-comparison example programs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.hw.exceptions import AliasException, AliasRegisterOverflow
from repro.hw.ranges import AccessRange

#: Encoding limit the paper cites for Efficeon's bit-mask.
EFFICEON_MAX_REGISTERS = 15

#: Registers hold plain ``(start, size, is_load)`` tuples; AccessRange
#: objects are materialized only for exception messages and ``repr``.
_FileEntry = Tuple[int, int, bool]


@dataclass
class BitmaskStats:
    sets: int = 0
    checks: int = 0
    comparisons: int = 0
    exceptions: int = 0


class BitmaskAliasFile:
    """Directly indexed alias registers checked via per-instruction masks."""

    def __init__(self, num_registers: int = EFFICEON_MAX_REGISTERS) -> None:
        if num_registers <= 0:
            raise ValueError("need at least one alias register")
        if num_registers > EFFICEON_MAX_REGISTERS:
            raise AliasRegisterOverflow(
                f"bit-mask encoding supports at most {EFFICEON_MAX_REGISTERS} "
                f"registers; asked for {num_registers}"
            )
        self.num_registers = num_registers
        self._entries: Dict[int, _FileEntry] = {}
        self._setters: Dict[int, Optional[int]] = {}
        self.stats = BitmaskStats()

    def _check_index(self, index: int) -> None:
        if not 0 <= index < self.num_registers:
            raise AliasRegisterOverflow(
                f"alias register {index} out of range 0..{self.num_registers - 1}"
            )

    def set(
        self, index: int, access: AccessRange, setter_mem_index: Optional[int] = None
    ) -> None:
        """Record ``access`` in register ``index``."""
        self.set_range(
            index, access.start, access.size, access.is_load, setter_mem_index
        )

    def set_range(
        self,
        index: int,
        start: int,
        size: int,
        is_load: bool,
        setter_mem_index: Optional[int] = None,
    ) -> None:
        """Scalar fast path for :meth:`set` (no AccessRange allocation).
        Keeps :class:`AccessRange`'s validation contract."""
        if size <= 0:
            raise ValueError("access size must be positive")
        if start < 0:
            raise ValueError("access address must be non-negative")
        if not 0 <= index < self.num_registers:
            self._check_index(index)  # raises; out of the hot path
        self._entries[index] = (start, size, is_load)
        self._setters[index] = setter_mem_index
        self.stats.sets += 1

    def check(
        self,
        mask: int,
        access: AccessRange,
        checker_mem_index: Optional[int] = None,
    ) -> None:
        """Check exactly the registers named by ``mask`` (bit i -> ARi)."""
        self.check_range(
            mask, access.start, access.size, access.is_load, checker_mem_index
        )

    def check_range(
        self,
        mask: int,
        a_start: int,
        a_size: int,
        is_load: bool,
        checker_mem_index: Optional[int] = None,
    ) -> None:
        """Scalar fast path for :meth:`check` (same detection rule).
        Keeps :class:`AccessRange`'s validation contract."""
        if a_size <= 0:
            raise ValueError("access size must be positive")
        if a_start < 0:
            raise ValueError("access address must be non-negative")
        if mask < 0 or mask >= (1 << self.num_registers):
            raise AliasRegisterOverflow(
                f"mask {mask:#x} names registers beyond {self.num_registers}"
            )
        stats = self.stats
        stats.checks += 1
        entries = self._entries
        a_top = a_start + a_size
        for index in range(self.num_registers):
            if not mask & (1 << index):
                continue
            entry = entries.get(index)
            if entry is None:
                continue
            stats.comparisons += 1
            e_start, e_size, e_is_load = entry
            if e_start < a_top and a_start < e_start + e_size:
                stats.exceptions += 1
                access = AccessRange(start=a_start, size=a_size, is_load=is_load)
                stored = AccessRange(
                    start=e_start, size=e_size, is_load=e_is_load
                )
                raise AliasException(
                    f"bitmask alias: {access} overlaps AR{index} {stored}",
                    setter_mem_index=self._setters.get(index),
                    checker_mem_index=checker_mem_index,
                )

    def clear(self) -> None:
        self._entries.clear()
        self._setters.clear()

    def reset(self) -> None:
        self.clear()

    def event_signature(self):
        """Cumulative event counters for timing-plan replay signatures
        (timing-transparent contract; comparisons excluded as
        data-dependent)."""
        s = self.stats
        return (s.sets, s.checks, s.exceptions)

    def __repr__(self) -> str:
        live = ", ".join(
            f"AR{i}:{AccessRange(start=s, size=n, is_load=ld)}"
            for i, (s, n, ld) in sorted(self._entries.items())
        )
        return f"<BitmaskAliasFile {self.num_registers} regs live=[{live}]>"
