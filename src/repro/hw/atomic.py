"""Atomic-region execution support (checkpoint / rollback).

The dynamic optimization system places translated code in atomic regions
(paper Figure 1): entering a region snapshots architectural state; an alias
exception (or interrupt / consistency violation) rolls the region back and
control returns to the runtime, which re-optimizes or interprets.

The checkpoint captures the guest register file and a write-undo log of the
guest memory. Undo logging (rather than full memory copies) keeps the model
cheap for large memories while remaining exact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple


@dataclass
class Checkpoint:
    """Snapshot of architectural state at atomic-region entry."""

    registers: List[float]
    guest_pc: int
    undo_log: List[Tuple[int, int, bytes]] = field(default_factory=list)


@dataclass
class AtomicStats:
    checkpoints: int = 0
    commits: int = 0
    rollbacks: int = 0
    undone_bytes: int = 0


class AtomicRegionSupport:
    """Checkpoint/rollback machinery shared by all simulated schemes."""

    def __init__(self, memory) -> None:
        self._memory = memory
        self._checkpoint: Checkpoint = None  # type: ignore[assignment]
        self.stats = AtomicStats()

    @property
    def active(self) -> bool:
        return self._checkpoint is not None

    def begin(self, registers: List[float], guest_pc: int) -> None:
        """Enter an atomic region: snapshot registers, arm undo logging."""
        if self.active:
            raise RuntimeError("nested atomic regions are not supported")
        self._checkpoint = Checkpoint(list(registers), guest_pc)
        self.stats.checkpoints += 1

    def log_write(self, addr: int, size: int) -> None:
        """Record pre-image of a store about to execute inside the region."""
        if not self.active:
            return
        old = self._memory.read_bytes(addr, size)
        self._checkpoint.undo_log.append((addr, size, old))

    def commit(self) -> None:
        """Leave the region successfully; discard the checkpoint."""
        if not self.active:
            raise RuntimeError("commit without an active atomic region")
        self._checkpoint = None
        self.stats.commits += 1

    def event_signature(self) -> Tuple[int, int, int, int]:
        """Cumulative event counters for timing-plan replay signatures.

        Checkpoint/rollback bookkeeping is timing-transparent in the
        simulator's sense: it changes only undo-log state, never issue
        timing (rollback *penalty* cycles are charged by the machine
        model at abort, not by these calls).
        """
        s = self.stats
        return (s.checkpoints, s.commits, s.rollbacks, s.undone_bytes)

    def rollback(self) -> Tuple[List[float], int]:
        """Undo all region stores; return (registers, guest_pc) to resume."""
        if not self.active:
            raise RuntimeError("rollback without an active atomic region")
        checkpoint = self._checkpoint
        for addr, size, old in reversed(checkpoint.undo_log):
            self._memory.write_bytes(addr, old)
            self.stats.undone_bytes += size
        self._checkpoint = None
        self.stats.rollbacks += 1
        return checkpoint.registers, checkpoint.guest_pc
