"""Hardware alias-detection models.

Executable models of the four detection schemes the paper compares
(Table 1):

* :class:`~repro.hw.queue_model.AliasRegisterQueue` — the order-based queue
  SMARQ manages (P/C bits, rotation, AMOV). No false positives, detects
  store-store aliases, scales to any register count.
* :class:`~repro.hw.itanium.AlatModel` — Itanium-like ALAT: stores check all
  live entries (false positives possible), store-store aliases undetectable.
* :class:`~repro.hw.efficeon.BitmaskAliasFile` — Efficeon-like bit-mask file:
  precise but capped at 15 registers by instruction encoding.
* :class:`~repro.hw.none.NoAliasHardware` — no detection; the optimizer must
  not speculate.

All models raise :class:`~repro.hw.exceptions.AliasException` when a runtime
alias is detected, which the runtime turns into an atomic-region rollback.
"""

from repro.hw.exceptions import (
    AliasException,
    AliasRegisterOverflow,
    HardwareError,
)
from repro.hw.ranges import AccessRange
from repro.hw.queue_model import AliasRegisterQueue
from repro.hw.itanium import AlatModel
from repro.hw.efficeon import BitmaskAliasFile, EFFICEON_MAX_REGISTERS
from repro.hw.none import NoAliasHardware
from repro.hw.atomic import AtomicRegionSupport, Checkpoint

__all__ = [
    "AccessRange",
    "AlatModel",
    "AliasException",
    "AliasRegisterOverflow",
    "AliasRegisterQueue",
    "AtomicRegionSupport",
    "BitmaskAliasFile",
    "Checkpoint",
    "EFFICEON_MAX_REGISTERS",
    "HardwareError",
    "NoAliasHardware",
]
