"""Itanium-like ALAT model (paper Sections 2.3 and 6.1).

The Advanced Load Address Table records the address range of each advanced
load. Every store automatically checks *all* live entries — software cannot
name which entries to check. Consequences the paper exploits:

* **False positives**: a store that aliases an advanced load it was never
  reordered against still raises an exception (Figure 3's M2 vs M1 case).
* **No store-store detection**: stores do not allocate entries, so aliases
  between reordered stores are invisible; the optimizer must not reorder
  stores under this model.

The model keys entries by the setter's mem_index so invalidation semantics
(a check-load removing its own entry) can be expressed.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.hw.exceptions import AliasException
from repro.hw.ranges import AccessRange

#: Live ALAT entries are plain ``(start, size, is_load)`` tuples — every
#: store scans the whole table, so the scan loop avoids attribute reads;
#: :class:`AccessRange` objects exist only at the API boundary
#: (exception messages, :meth:`AlatModel.advanced_load`'s signature).
_AlatEntry = Tuple[int, int, bool]


@dataclass
class AlatStats:
    inserts: int = 0
    store_checks: int = 0
    comparisons: int = 0
    exceptions: int = 0
    false_positives: int = 0


class AlatModel:
    """ALAT-style alias detection: loads insert, stores check everything."""

    def __init__(self, num_entries: int = 32) -> None:
        if num_entries <= 0:
            raise ValueError("ALAT needs at least one entry")
        self.num_entries = num_entries
        self._entries: Dict[int, _AlatEntry] = {}  # mem_index -> range
        #: mem_index keys kept sorted, so every store's full-table check
        #: walks them directly instead of re-sorting the dict
        self._keys: List[int] = []
        self.stats = AlatStats()

    def _drop_key(self, mem_index: int) -> None:
        idx = bisect_left(self._keys, mem_index)
        if idx < len(self._keys) and self._keys[idx] == mem_index:
            del self._keys[idx]

    def advanced_load(self, mem_index: int, access: AccessRange) -> None:
        """``ld.a`` — insert an entry; evicts the oldest when full.

        Eviction silently loses protection; real Itanium turns the later
        ``chk.a`` into a recovery branch. Our model treats eviction as a
        detection (conservative) to keep the simulator's recovery story
        uniform: see :meth:`check_load`.
        """
        self.advanced_load_range(
            mem_index, access.start, access.size, access.is_load
        )

    def advanced_load_range(
        self, mem_index: int, start: int, size: int, is_load: bool
    ) -> None:
        """Scalar fast path for :meth:`advanced_load` (no
        :class:`AccessRange` allocation — called once per P-bit load).
        Keeps :class:`AccessRange`'s validation contract."""
        if size <= 0:
            raise ValueError("access size must be positive")
        if start < 0:
            raise ValueError("access address must be non-negative")
        entries = self._entries
        if len(entries) >= self.num_entries:
            oldest = self._keys[0]
            del self._keys[0]
            del entries[oldest]
        if mem_index not in entries:
            insort(self._keys, mem_index)
        entries[mem_index] = (start, size, is_load)
        self.stats.inserts += 1

    def store_check(
        self,
        access: AccessRange,
        checker_mem_index: Optional[int] = None,
        required_targets: Optional[Set[int]] = None,
    ) -> None:
        """Every store checks ALL live entries.

        ``required_targets`` is the set of setter mem_indexes that a precise
        scheme (SMARQ) would have needed to check; it is used purely for
        accounting, letting the model label an exception as a false positive
        when the overlapping entry was not a required target.
        """
        self.store_check_range(
            access.start,
            access.size,
            access.is_load,
            checker_mem_index,
            required_targets,
        )

    def store_check_range(
        self,
        a_start: int,
        a_size: int,
        is_load: bool,
        checker_mem_index: Optional[int] = None,
        required_targets: Optional[Set[int]] = None,
    ) -> None:
        """Scalar fast path for :meth:`store_check` (same rule).
        Keeps :class:`AccessRange`'s validation contract."""
        if a_size <= 0:
            raise ValueError("access size must be positive")
        if a_start < 0:
            raise ValueError("access address must be non-negative")
        stats = self.stats
        stats.store_checks += 1
        entries = self._entries
        a_top = a_start + a_size
        compared = 0
        try:
            for mem_index in self._keys:
                e_start, e_size, e_is_load = entries[mem_index]
                compared += 1
                if e_start < a_top and a_start < e_start + e_size:
                    self._raise_overlap(
                        AccessRange(start=e_start, size=e_size, is_load=e_is_load),
                        AccessRange(start=a_start, size=a_size, is_load=is_load),
                        mem_index,
                        checker_mem_index,
                        required_targets,
                    )
        finally:
            stats.comparisons += compared

    def _raise_overlap(
        self,
        entry: AccessRange,
        access: AccessRange,
        mem_index: int,
        checker_mem_index: Optional[int],
        required_targets: Optional[Set[int]],
    ) -> None:
        """Account for and raise a store-check hit (cold path)."""
        false_positive = (
            required_targets is not None and mem_index not in required_targets
        )
        self.stats.exceptions += 1
        if false_positive:
            self.stats.false_positives += 1
        raise AliasException(
            f"ALAT alias: store {access} overlaps entry {entry}",
            setter_mem_index=mem_index,
            checker_mem_index=checker_mem_index,
            false_positive=false_positive,
        )

    def check_load(self, mem_index: int) -> bool:
        """``ld.c`` / ``chk.a`` — verify the advanced load's entry survives.

        Returns True (and removes the entry) if the entry is intact; False
        means the entry was evicted and the speculation must be recovered.
        """
        if self._entries.pop(mem_index, None) is not None:
            self._drop_key(mem_index)
            return True
        return False

    def invalidate(self, mem_index: int) -> None:
        """Drop an entry without checking (region exit cleanup)."""
        if self._entries.pop(mem_index, None) is not None:
            self._drop_key(mem_index)

    def clear(self) -> None:
        self._entries.clear()
        self._keys.clear()

    def reset(self) -> None:
        self._entries.clear()
        self._keys.clear()

    def event_signature(self):
        """Cumulative event counters for timing-plan replay signatures.

        ALAT operations are timing-transparent (table state plus possible
        :class:`AliasException` only); comparisons are excluded because a
        store's scan length before an overlap is data-dependent.
        """
        s = self.stats
        return (s.inserts, s.store_checks, s.exceptions, s.false_positives)

    @property
    def live_count(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        return f"<AlatModel {len(self._entries)}/{self.num_entries} live>"
