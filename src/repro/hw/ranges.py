"""Memory access ranges.

An alias register stores the byte range ``[addr, addr + size - 1]`` touched
by the memory operation that set it, plus a *load mark* the hardware uses so
later loads skip checking ranges set by loads (paper Section 2.4).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class AccessRange:
    """A closed byte range ``[start, end]`` of a single memory access."""

    start: int
    size: int
    is_load: bool = False

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError("access size must be positive")
        if self.start < 0:
            raise ValueError("access address must be non-negative")

    @property
    def end(self) -> int:
        """Last byte touched (inclusive)."""
        return self.start + self.size - 1

    def overlaps(self, other: "AccessRange") -> bool:
        """True if the two byte ranges share at least one byte.

        Spelled with open upper bounds (``start + size``) rather than the
        :attr:`end` property so the hottest predicate in the simulator
        pays plain attribute reads instead of two property descriptors;
        for positive sizes ``a <= e`` with ``e = s + n - 1`` is exactly
        ``a < s + n``.
        """
        return (
            self.start < other.start + other.size
            and other.start < self.start + self.size
        )

    def __repr__(self) -> str:
        kind = "ld" if self.is_load else "st"
        return f"AccessRange({kind} [{self.start:#x}..{self.end:#x}])"
