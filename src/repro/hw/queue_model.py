"""Order-based alias register queue — the hardware SMARQ manages.

The queue is a circular file of ``num_registers`` alias registers with a
rotating BASE pointer. Software references registers by *offset* relative to
the current BASE; the model tracks the absolute *order* (``base + offset``)
internally, exactly the invariance the paper states in Section 3.2.

Detection implements ORDERED-ALIAS-DETECTION-RULE (Section 3.1): an
executing memory operation ``X`` with the C bit checks every previously set,
still-live register whose order is *not earlier* than the order of the
register allocated to ``X``, i.e. every live entry at order >= order(X).
Entries set by loads are marked and skipped when the checker is a load.

Operations:

``set(offset, range)``       — P-bit action: store the access range.
``check(offset, range)``     — C-bit action: compare against live entries.
``rotate(n)``                — advance BASE by ``n``; released entries clear.
``amov(src, dst)``           — move a range between offsets (or clean it
                               when ``src == dst``), paper Section 3.3.

The model raises :class:`AliasRegisterOverflow` if software references an
offset at or beyond the physical register count — SMARQ's allocator
guarantees this never happens; the check catches allocator bugs.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.hw.exceptions import AliasException, AliasRegisterOverflow
from repro.hw.ranges import AccessRange

#: Live entries are stored as plain ``(start, size, is_load,
#: setter_mem_index)`` tuples — the check loop is the simulator's hottest
#: scan and a tuple unpack beats three attribute reads on a dataclass.
#: :class:`AccessRange` objects are materialized only at the API boundary
#: (:meth:`AliasRegisterQueue.entry_at_offset`, exception messages,
#: ``repr``).
_EntryTuple = Tuple[int, int, bool, Optional[int]]


@dataclass
class QueueStats:
    """Counters for energy/efficiency accounting (paper Section 2.4)."""

    sets: int = 0
    checks: int = 0
    comparisons: int = 0  # individual entry comparisons performed
    rotations: int = 0
    rotated_registers: int = 0
    amovs: int = 0
    exceptions: int = 0
    max_live: int = 0


class AliasRegisterQueue:
    """Circular, ordered alias register file with a rotating BASE."""

    def __init__(self, num_registers: int = 64) -> None:
        if num_registers <= 0:
            raise ValueError("need at least one alias register")
        self.num_registers = num_registers
        self._base = 0  # absolute order of offset 0
        self._entries: Dict[int, _EntryTuple] = {}  # keyed by absolute order
        #: live orders kept sorted incrementally, so a check scans only
        #: the suffix at >= its own order instead of sorting every call
        self._orders: List[int] = []
        self.stats = QueueStats()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def base(self) -> int:
        """Absolute order of the register at offset 0."""
        return self._base

    def live_orders(self) -> List[int]:
        """Absolute orders of currently live entries (sorted)."""
        return list(self._orders)

    def event_signature(self) -> Tuple[int, int, int, int, int, int]:
        """Cumulative event counters for timing-plan replay signatures.

        Queue operations never influence issue timing (they are
        timing-transparent: state changes plus possible
        :class:`AliasException` only), so an adapter can summarize one
        region execution's events as the componentwise delta of this
        tuple across the region. Comparison counts are deliberately
        excluded: how many live entries a check scans before an overlap
        is data-dependent, while the *architectural* event stream below
        is trace-determined.
        """
        s = self.stats
        return (
            s.sets,
            s.checks,
            s.rotations,
            s.rotated_registers,
            s.amovs,
            s.exceptions,
        )

    def entry_at_offset(self, offset: int) -> Optional[AccessRange]:
        """The access range stored at ``offset``, if any."""
        self._check_offset(offset)
        entry = self._entries.get(self._base + offset)
        if entry is None:
            return None
        start, size, is_load, _setter = entry
        return AccessRange(start=start, size=size, is_load=is_load)

    def _check_offset(self, offset: int) -> None:
        if offset < 0:
            raise AliasRegisterOverflow(f"negative alias register offset {offset}")
        if offset >= self.num_registers:
            raise AliasRegisterOverflow(
                f"offset {offset} >= physical register count {self.num_registers}"
            )

    # ------------------------------------------------------------------
    # Architectural operations
    # ------------------------------------------------------------------
    def set(
        self,
        offset: int,
        access: AccessRange,
        setter_mem_index: Optional[int] = None,
    ) -> None:
        """P-bit action: record ``access`` in the register at ``offset``."""
        self.set_range(
            offset, access.start, access.size, access.is_load, setter_mem_index
        )

    def set_range(
        self,
        offset: int,
        start: int,
        size: int,
        is_load: bool,
        setter_mem_index: Optional[int] = None,
    ) -> None:
        """Scalar fast path for :meth:`set` (no :class:`AccessRange`
        allocation — the simulator calls this once per P-bit memory op).

        Keeps :class:`AccessRange`'s validation contract: degenerate
        ranges are rejected here too, not just at the object boundary."""
        if size <= 0:
            raise ValueError("access size must be positive")
        if start < 0:
            raise ValueError("access address must be non-negative")
        if offset < 0 or offset >= self.num_registers:
            self._check_offset(offset)  # raises; out of the hot path
        order = self._base + offset
        entries = self._entries
        if order not in entries:
            insort(self._orders, order)
        entries[order] = (start, size, is_load, setter_mem_index)
        stats = self.stats
        stats.sets += 1
        if len(entries) > stats.max_live:
            stats.max_live = len(entries)

    def check(
        self,
        offset: int,
        access: AccessRange,
        checker_mem_index: Optional[int] = None,
    ) -> None:
        """C-bit action: detect aliases per ORDERED-ALIAS-DETECTION-RULE.

        Checks every live entry whose order is >= ``base + offset``. Entries
        set by loads are skipped when ``access`` is itself a load (hardware
        auto-marks load-set registers, Section 2.4).

        Raises :class:`AliasException` on the first overlapping range.
        """
        self.check_range(
            offset, access.start, access.size, access.is_load, checker_mem_index
        )

    def check_range(
        self,
        offset: int,
        a_start: int,
        a_size: int,
        is_load: bool,
        checker_mem_index: Optional[int] = None,
    ) -> None:
        """Scalar fast path for :meth:`check` (same detection rule).

        Stats contract (identical to the historical ``check``): the
        comparisons performed are always counted, an overlap counts one
        exception, and ``checks`` is incremented only when the check
        completes without detecting — an aborting check never counted.
        """
        if a_size <= 0:
            raise ValueError("access size must be positive")
        if a_start < 0:
            raise ValueError("access address must be non-negative")
        if offset < 0 or offset >= self.num_registers:
            self._check_offset(offset)  # raises; out of the hot path
        own_order = self._base + offset
        orders = self._orders
        entries = self._entries
        stats = self.stats
        a_top = a_start + a_size
        compared = 0
        for idx in range(bisect_left(orders, own_order), len(orders)):
            order = orders[idx]
            s_start, s_size, s_is_load, s_setter = entries[order]
            if is_load and s_is_load:
                continue
            compared += 1
            if s_start < a_top and a_start < s_start + s_size:
                stats.comparisons += compared
                stats.exceptions += 1
                access = AccessRange(
                    start=a_start, size=a_size, is_load=is_load
                )
                stored = AccessRange(
                    start=s_start, size=s_size, is_load=s_is_load
                )
                raise AliasException(
                    f"alias: {access} overlaps {stored} "
                    f"(order {order}, base {self._base})",
                    setter_mem_index=s_setter,
                    checker_mem_index=checker_mem_index,
                )
        stats.comparisons += compared
        stats.checks += 1

    def check_then_set(
        self,
        offset: int,
        access: AccessRange,
        mem_index: Optional[int] = None,
    ) -> None:
        """Combined P+C behaviour: check *before* setting (Section 3.1),
        so an operation never aliases against itself."""
        self.check_range(
            offset, access.start, access.size, access.is_load, mem_index
        )
        self.set_range(
            offset, access.start, access.size, access.is_load, mem_index
        )

    def check_then_set_range(
        self,
        offset: int,
        start: int,
        size: int,
        is_load: bool,
        mem_index: Optional[int] = None,
    ) -> None:
        """Scalar fast path for :meth:`check_then_set`."""
        self.check_range(offset, start, size, is_load, mem_index)
        self.set_range(offset, start, size, is_load, mem_index)

    def rotate(self, amount: int) -> None:
        """Advance BASE by ``amount``; entries rotated past BASE are freed."""
        if amount < 0:
            raise ValueError("rotate amount must be non-negative")
        new_base = self._base + amount
        released = bisect_left(self._orders, new_base)
        if released:
            for order in self._orders[:released]:
                del self._entries[order]
            del self._orders[:released]
        self._base = new_base
        self.stats.rotations += 1
        self.stats.rotated_registers += amount

    def amov(self, src_offset: int, dst_offset: int) -> None:
        """Move the access range from ``src_offset`` to ``dst_offset``.

        After the move the source register is cleaned. ``src == dst`` only
        cleans (the common case the paper notes in Section 3.3).
        """
        self._check_offset(src_offset)
        self._check_offset(dst_offset)
        src_order = self._base + src_offset
        entry = self._entries.pop(src_order, None)
        if entry is not None:
            idx = bisect_left(self._orders, src_order)
            del self._orders[idx]
            if src_offset != dst_offset:
                dst_order = self._base + dst_offset
                if dst_order not in self._entries:
                    insort(self._orders, dst_order)
                self._entries[dst_order] = entry
        self.stats.amovs += 1

    def clear(self) -> None:
        """Flush all entries (atomic region commit/rollback)."""
        self._entries.clear()
        self._orders.clear()

    def reset(self) -> None:
        """Full reset including BASE (new region entry)."""
        self._entries.clear()
        self._orders.clear()
        self._base = 0

    def __repr__(self) -> str:
        live = ", ".join(
            f"AR@{order}:{AccessRange(start=s, size=n, is_load=ld)}"
            for order, (s, n, ld, _m) in sorted(self._entries.items())
        )
        return (
            f"<AliasRegisterQueue base={self._base} "
            f"regs={self.num_registers} live=[{live}]>"
        )
